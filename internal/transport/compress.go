package transport

import (
	"encoding/binary"
	"fmt"
	"slices"

	"parallax/internal/tensor"
)

// Wire-compression layer: per-route payload codecs below the frame
// codec. The discipline that keeps compressed runs bit-identical across
// fabrics is split in two:
//
//   - The DATA PLANE (internal/collective, internal/transform) applies
//     every lossy transform — f16/bf16 rounding, top-k sparsification
//     with error feedback — deterministically at points that are
//     symmetric across fabrics, including paths that never touch a
//     socket. After that, all values in flight lie on the codec's grid.
//   - The WIRE layer here re-encodes those on-grid values compactly
//     (2-byte halves, delta-varint indices), which is lossless, so the
//     inproc fabric (no serialization) and the TCP fabric (compressed
//     frames) deliver bit-identical floats.
//
// CompressionNone (the zero Policy) routes everything through the
// original f32 frames untouched.

// Codec selects the wire encoding of a float payload. The values of a
// compressed payload must already lie on the codec's grid — the encoder
// truncates, it does not round — which the data-plane quantizers
// (tensor.QuantizeF16/QuantizeBF16) guarantee.
type Codec uint8

// Payload codecs.
const (
	// CodecF32 is the exact 4-byte encoding (the default).
	CodecF32 Codec = iota
	// CodecF16 encodes IEEE-754 binary16 payloads (2 bytes/value).
	CodecF16
	// CodecBF16 encodes bfloat16 payloads (2 bytes/value).
	CodecBF16
)

// String names the codec for fingerprints and diagnostics.
func (c Codec) String() string {
	switch c {
	case CodecF32:
		return "f32"
	case CodecF16:
		return "f16"
	case CodecBF16:
		return "bf16"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

func (c Codec) valid() bool { return c <= CodecBF16 }

// Quantize rounds a slice onto the codec's grid in place
// (round-to-nearest-even); CodecF32 is a no-op. This is the data-plane
// half of the compression contract.
func (c Codec) Quantize(x []float32) {
	switch c {
	case CodecF16:
		tensor.QuantizeF16(x)
	case CodecBF16:
		tensor.QuantizeBF16(x)
	}
}

// Policy selects the compression codec per route class. The zero value
// is CompressionNone: every payload travels as exact f32 and the wire
// format is byte-identical to the uncompressed build.
type Policy struct {
	// Dense is the payload codec for dense-AllReduce fusion buckets.
	Dense Codec
	// DenseTopK, in (0, 1], turns dense buckets into top-k sparsified
	// exchanges with per-worker error-feedback residuals; the surviving
	// values travel under Dense's codec. 0 disables sparsification.
	DenseTopK float64
	// PSDense is the payload codec for parameter-server dense pushes.
	PSDense Codec
	// PSSparse is the value codec for parameter-server sparse
	// (embedding) pushes.
	PSSparse Codec
	// DeltaIndex delta-varint encodes sparse push row indices when they
	// are strictly ascending (coalesced pushes are); unsorted index sets
	// fall back to raw u32 automatically.
	DeltaIndex bool
}

// Enabled reports whether any route compresses.
func (p Policy) Enabled() bool {
	return p.Dense != CodecF32 || p.DenseTopK > 0 ||
		p.PSDense != CodecF32 || p.PSSparse != CodecF32 || p.DeltaIndex
}

// Validate rejects malformed policies.
func (p Policy) Validate() error {
	if !p.Dense.valid() || !p.PSDense.valid() || !p.PSSparse.valid() {
		return fmt.Errorf("transport: unknown codec in policy %+v", p)
	}
	if p.DenseTopK < 0 || p.DenseTopK > 1 {
		return fmt.Errorf("transport: DenseTopK %g outside [0,1]", p.DenseTopK)
	}
	return nil
}

// Fingerprint renders the policy canonically. Peers exchange it during
// the TCP rendezvous and refuse to connect on mismatch, and checkpoints
// record it so a compressed run cannot silently resume under a
// different policy.
func (p Policy) Fingerprint() string {
	if !p.Enabled() {
		return "none"
	}
	return fmt.Sprintf("dense=%s,topk=%g,psdense=%s,pssparse=%s,delta=%t",
		p.Dense, p.DenseTopK, p.PSDense, p.PSSparse, p.DeltaIndex)
}

// Describe renders the policy per route class for operators, one route
// per line.
func (p Policy) Describe() string {
	if !p.Enabled() {
		return "compression: none (exact f32 on every route)\n"
	}
	dense := p.Dense.String()
	if p.DenseTopK > 0 {
		dense = fmt.Sprintf("top-%g%% + %s values + error feedback", p.DenseTopK*100, p.Dense)
	}
	sparse := p.PSSparse.String()
	if p.DeltaIndex {
		sparse += " values + delta-varint indices"
	}
	return fmt.Sprintf("compression: %s\n  dense collective  %s\n  ps dense push     %s\n  ps sparse push    %s\n  ps pull replies   f32 (always exact)\n",
		p.Fingerprint(), dense, p.PSDense, sparse)
}

// SparseChunk is a top-k sparsified dense chunk: the nnz surviving
// (index, value) pairs of a length-Len float buffer, the payload of a
// kindF32Sparse frame.
type SparseChunk struct {
	// Len is the dense length of the chunk this selection came from.
	Len int
	// Idx holds the surviving positions, strictly ascending.
	Idx []int32
	// Vals holds the surviving values, on Codec's grid.
	Vals []float32
	// Codec is the wire codec for Vals.
	Codec Codec
}

// AppendF16s bulk-encodes an on-grid float chunk as IEEE-754 binary16
// bit patterns, 2 bytes per value — the compressed sibling of
// AppendF32s. Same grow-once discipline: this is the fusion-bucket path.
func AppendF16s(b []byte, data []float32) []byte {
	off := len(b)
	b = slices.Grow(b, 2*len(data))[:off+2*len(data)]
	for i, v := range data {
		binary.LittleEndian.PutUint16(b[off+2*i:], tensor.F32ToF16Bits(v))
	}
	return b
}

// AppendBF16s bulk-encodes an on-grid float chunk as bfloat16 bit
// patterns, 2 bytes per value.
func AppendBF16s(b []byte, data []float32) []byte {
	off := len(b)
	b = slices.Grow(b, 2*len(data))[:off+2*len(data)]
	for i, v := range data {
		binary.LittleEndian.PutUint16(b[off+2*i:], tensor.F32ToBF16Bits(v))
	}
	return b
}

// appendCodec encodes a float payload under the given codec.
func appendCodec(b []byte, data []float32, c Codec) []byte {
	switch c {
	case CodecF16:
		return AppendF16s(b, data)
	case CodecBF16:
		return AppendBF16s(b, data)
	}
	return AppendF32s(b, data)
}

// payloadElemSize is the wire bytes per float under a codec.
func payloadElemSize(c Codec) int {
	if c == CodecF32 {
		return 4
	}
	return 2
}

// F16s consumes n binary16 values, expanding them into dst — the
// decoder for AppendF16s.
func (d *Decoder) F16s(n int, dst []float32) error {
	s, err := d.Bytes(n * 2)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		dst[i] = tensor.F16BitsToF32(binary.LittleEndian.Uint16(s[i*2:]))
	}
	return nil
}

// BF16s consumes n bfloat16 values, expanding them into dst.
func (d *Decoder) BF16s(n int, dst []float32) error {
	s, err := d.Bytes(n * 2)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		dst[i] = tensor.BF16BitsToF32(binary.LittleEndian.Uint16(s[i*2:]))
	}
	return nil
}

// floats consumes n values under a codec.
func (d *Decoder) floats(n int, dst []float32, c Codec) error {
	switch c {
	case CodecF16:
		return d.F16s(n, dst)
	case CodecBF16:
		return d.BF16s(n, dst)
	}
	return d.F32s(n, dst)
}

// appendUvarint writes a minimal-length LEB128 varint.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// uvarint consumes one varint and rejects non-minimal encodings (a
// shorter encoding exists) and values past 5 bytes — both would break
// the canonical re-encode property the frame fuzzer pins.
func (d *Decoder) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		c, err := d.U8()
		if err != nil {
			return 0, err
		}
		if i == 4 && c > 0x0F { // 5 bytes already cover 35 bits > u32 range
			return 0, fmt.Errorf("transport: varint exceeds 32 bits")
		}
		v |= uint64(c&0x7F) << shift
		if c&0x80 == 0 {
			if c == 0 && i > 0 {
				return 0, fmt.Errorf("transport: non-minimal varint")
			}
			return v, nil
		}
		shift += 7
		if i == 4 {
			return 0, fmt.Errorf("transport: varint exceeds 32 bits")
		}
	}
}

// Sparse index modes for the compressed sparse body. The encoder picks
// deltaIndexMode exactly when the rows are strictly ascending, and the
// decoder enforces that choice, so the encoding is canonical.
const (
	rawIndexMode   = 0
	deltaIndexMode = 1
)

// rowsAscending reports whether a row sequence is strictly ascending
// (coalesced sparse gradients are; raw per-batch gathers are not).
func rowsAscending(rows []int) bool {
	for i := 1; i < len(rows); i++ {
		if rows[i] <= rows[i-1] {
			return false
		}
	}
	return true
}

// appendSparseC encodes a sparse tensor with a value codec and
// (optionally) delta-varint row indices:
//
//	u32 dim0 | u32 width | u8 idxMode | u32 nrows
//	| rows (raw u32, or varint first + varint deltas >= 1)
//	| nrows*width values under codec
func appendSparseC(b []byte, s *tensor.Sparse, codec Codec, delta bool) []byte {
	w := s.RowWidth()
	b = appendU32(b, uint32(s.Dim0))
	b = appendU32(b, uint32(w))
	mode := byte(rawIndexMode)
	if delta && rowsAscending(s.Rows) {
		mode = deltaIndexMode
	}
	b = append(b, mode)
	b = appendU32(b, uint32(len(s.Rows)))
	if mode == deltaIndexMode {
		prev := 0
		for i, r := range s.Rows {
			if i == 0 {
				b = appendUvarint(b, uint64(r))
			} else {
				b = appendUvarint(b, uint64(r-prev))
			}
			prev = r
		}
	} else {
		for _, r := range s.Rows {
			b = appendU32(b, uint32(r))
		}
	}
	return appendCodec(b, s.Values.Data(), codec)
}

// decodeSparseC decodes appendSparseC's body. Delta-mode indices must be
// strictly ascending (each delta >= 1) and raw mode must NOT be strictly
// ascending when delta encoding is on — the canonical-choice rule that
// makes decode(encode(x)) byte-stable.
func decodeSparseC(d *Decoder, codec Codec, delta bool) (*tensor.Sparse, error) {
	dim0, err := d.U32()
	if err != nil {
		return nil, err
	}
	width, err := d.U32()
	if err != nil {
		return nil, err
	}
	mode, err := d.U8()
	if err != nil {
		return nil, err
	}
	if mode > deltaIndexMode || (mode == deltaIndexMode && !delta) {
		return nil, fmt.Errorf("transport: sparse index mode %d invalid here", mode)
	}
	nrows, err := d.Count(1) // >= 1 byte per row in either mode
	if err != nil {
		return nil, err
	}
	rows := make([]int, nrows)
	if mode == deltaIndexMode {
		prev := -1
		for i := range rows {
			dv, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if i > 0 && dv == 0 {
				return nil, fmt.Errorf("transport: non-monotone delta index (zero delta)")
			}
			r := prev + int(dv)
			if i == 0 {
				r = int(dv)
			}
			if r >= int(dim0) {
				return nil, fmt.Errorf("transport: sparse row %d out of range [0,%d)", r, dim0)
			}
			rows[i] = r
			prev = r
		}
	} else {
		for i := range rows {
			r, err := d.U32()
			if err != nil {
				return nil, err
			}
			if r >= dim0 {
				return nil, fmt.Errorf("transport: sparse row %d out of range [0,%d)", r, dim0)
			}
			rows[i] = int(r)
		}
		if delta && rowsAscending(rows) {
			return nil, fmt.Errorf("transport: ascending rows must use delta index mode")
		}
	}
	es := payloadElemSize(codec)
	if uint64(nrows)*uint64(width)*uint64(es) > uint64(d.Remaining()) {
		return nil, fmt.Errorf("transport: sparse values %dx%d exceed remaining %d bytes",
			nrows, width, d.Remaining())
	}
	vals := tensor.NewDense(nrows, int(width))
	if err := d.floats(nrows*int(width), vals.Data(), codec); err != nil {
		return nil, err
	}
	return &tensor.Sparse{Rows: rows, Values: vals, Dim0: int(dim0)}, nil
}

// appendF32Sparse encodes a kindF32Sparse body:
//
//	u8 codec | u32 len | u32 nnz | varint idx[0] + varint deltas >= 1
//	| nnz values under codec
func appendF32Sparse(b []byte, ch *SparseChunk) []byte {
	b = append(b, byte(ch.Codec))
	b = appendU32(b, uint32(ch.Len))
	b = appendU32(b, uint32(len(ch.Idx)))
	prev := int32(0)
	for i, x := range ch.Idx {
		if i == 0 {
			b = appendUvarint(b, uint64(x))
		} else {
			b = appendUvarint(b, uint64(x-prev))
		}
		prev = x
	}
	return appendCodec(b, ch.Vals, ch.Codec)
}

// decodeF32Sparse decodes a kindF32Sparse body. Indices must be
// strictly ascending and inside [0, len); values expand onto f32.
func decodeF32Sparse(d *Decoder) (*SparseChunk, error) {
	c, err := d.U8()
	if err != nil {
		return nil, err
	}
	codec := Codec(c)
	if !codec.valid() {
		return nil, fmt.Errorf("transport: unknown payload codec %d", c)
	}
	length, err := d.U32()
	if err != nil {
		return nil, err
	}
	nnz, err := d.Count(1)
	if err != nil {
		return nil, err
	}
	if nnz > int(length) {
		return nil, fmt.Errorf("transport: sparsified chunk with %d of %d survivors", nnz, length)
	}
	idx := make([]int32, nnz)
	prev := int64(-1)
	for i := range idx {
		dv, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if i > 0 && dv == 0 {
			return nil, fmt.Errorf("transport: non-monotone delta index (zero delta)")
		}
		v := prev + int64(dv)
		if i == 0 {
			v = int64(dv)
		}
		if v >= int64(length) {
			return nil, fmt.Errorf("transport: sparsified index %d out of range [0,%d)", v, length)
		}
		idx[i] = int32(v)
		prev = v
	}
	es := payloadElemSize(codec)
	if uint64(nnz)*uint64(es) > uint64(d.Remaining()) {
		return nil, fmt.Errorf("transport: sparsified values exceed remaining %d bytes", d.Remaining())
	}
	vals := make([]float32, nnz)
	if err := d.floats(nnz, vals, codec); err != nil {
		return nil, err
	}
	return &SparseChunk{Len: int(length), Idx: idx, Vals: vals, Codec: codec}, nil
}

// compressedFrame reports whether a message uses any compressed
// encoding (for the raw-vs-compressed wire accounting).
func compressedFrame(m message) bool {
	switch m.kind {
	case kindF32:
		return m.codec != CodecF32
	case kindF32Sparse:
		return true
	case kindPS:
		return m.ps.DenseCodec != CodecF32 || m.ps.SparseCodec != CodecF32 || m.ps.DeltaIndex
	}
	return false
}

// rawFrameBytes is the payload size the same message would occupy under
// CompressionNone — for a kindF32Sparse frame, the dense chunk it
// replaces. The TCP fabric accumulates this next to the actual
// compressed size, which is what StepStats' compression ratio reports.
func rawFrameBytes(m message) int {
	n := 2 + 2 + 1 + 1 + len(m.tag) // src, dst, kind, tagLen, tag
	switch m.kind {
	case kindF32:
		n += 4 + 4*len(m.f32)
	case kindF32Sparse:
		n += 4 + 4*m.topk.Len
	case kindPS:
		ps := m.ps
		n += 1 + 8 + 4 + 8 + 2 + len(ps.Err) + 2
		for _, name := range ps.Names {
			n += 1 + len(name) + 4
		}
		n += 2
		for _, t := range ps.Dense {
			n += 4 + 4*t.NumElements()
		}
		n += 2
		for _, s := range ps.Sparse {
			n += 4 + 4 + 4 + 4*len(s.Rows) + 4*s.Values.NumElements()
		}
	}
	return n
}
