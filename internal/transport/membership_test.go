package transport

// Tests for the elastic-membership frames and the join handshake
// (membership.go): canonical encode/decode under the §8 codec
// discipline, and the park-then-offer protocol over a live elastic
// fabric. The unit cases here seed FuzzMembershipDecode's corpus.

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"parallax/internal/errs"
)

func sampleMemberships() []*Membership {
	return []*Membership{
		{Epoch: 0, Step: 0, Cursor: 0, Parts: 1, Joiner: -1,
			Members: []Member{{Addr: "127.0.0.1:7001", GPUs: 1}}},
		{Epoch: 3, Step: 20, Cursor: 80, Parts: 8, Joiner: 2, Members: []Member{
			{Addr: "10.0.0.1:7001", GPUs: 2},
			{Addr: "10.0.0.2:7001", GPUs: 2},
			{Addr: "10.0.0.3:7001", GPUs: 4},
		}},
		{Epoch: 1, Step: 1 << 40, Cursor: 1 << 41, Parts: 64, Joiner: -1, Members: []Member{
			{Addr: strings.Repeat("h", 255), GPUs: 0xFFFF},
			{Addr: "b:1", GPUs: 1},
		}},
	}
}

func sampleJoinRequests() []*JoinRequest {
	return []*JoinRequest{
		{Addr: "127.0.0.1:7003", GPUs: 2, Fingerprint: "none"},
		{Addr: "j:1", GPUs: 1, Fingerprint: ""},
		{Addr: strings.Repeat("a", 255), GPUs: 0xFFFF, Fingerprint: strings.Repeat("f", 255)},
	}
}

func TestMembershipRoundTrip(t *testing.T) {
	for i, m := range sampleMemberships() {
		b := AppendMembership(nil, m)
		got, err := DecodeMembership(b)
		if err != nil {
			t.Fatalf("membership %d: %v", i, err)
		}
		if got.Epoch != m.Epoch || got.Step != m.Step || got.Cursor != m.Cursor ||
			got.Parts != m.Parts || got.Joiner != m.Joiner || len(got.Members) != len(m.Members) {
			t.Fatalf("membership %d: decoded %+v, want %+v", i, got, m)
		}
		for j := range m.Members {
			if got.Members[j] != m.Members[j] {
				t.Fatalf("membership %d member %d: %+v != %+v", i, j, got.Members[j], m.Members[j])
			}
		}
		// Canonical: re-encoding the decoded value is byte-stable.
		if !bytes.Equal(AppendMembership(nil, got), b) {
			t.Fatalf("membership %d: re-encode not byte-stable", i)
		}
		if got.IndexOf(m.Members[0].Addr) != 0 || got.IndexOf("nobody") != -1 {
			t.Fatalf("membership %d: IndexOf wrong", i)
		}
	}
	for i, r := range sampleJoinRequests() {
		b := AppendJoinRequest(nil, r)
		got, err := DecodeJoinRequest(b)
		if err != nil {
			t.Fatalf("join request %d: %v", i, err)
		}
		if *got != *r {
			t.Fatalf("join request %d: decoded %+v, want %+v", i, got, r)
		}
		if !bytes.Equal(AppendJoinRequest(nil, got), b) {
			t.Fatalf("join request %d: re-encode not byte-stable", i)
		}
	}
}

func TestMembershipDecodeRejectsMalformed(t *testing.T) {
	good := AppendMembership(nil, sampleMemberships()[1])
	// Every strict prefix is a truncation and must error.
	for n := 0; n < len(good); n++ {
		if _, err := DecodeMembership(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing bytes break canonicality.
	if _, err := DecodeMembership(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	mutate := func(name string, f func(m *Membership)) {
		m := sampleMemberships()[1]
		c := *m
		c.Members = append([]Member(nil), m.Members...)
		f(&c)
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: encoding an invalid membership did not panic", name)
			}
		}()
		AppendMembership(nil, &c)
	}
	mutate("no members", func(m *Membership) { m.Members = nil })
	mutate("duplicate rank", func(m *Membership) { m.Members[1].Addr = m.Members[0].Addr })
	mutate("empty addr", func(m *Membership) { m.Members[0].Addr = "" })
	mutate("zero gpus", func(m *Membership) { m.Members[0].GPUs = 0 })
	mutate("joiner out of range", func(m *Membership) { m.Joiner = 3 })
	mutate("zero parts", func(m *Membership) { m.Parts = 0 })
	mutate("negative epoch", func(m *Membership) { m.Epoch = -1 })

	// The same invariants rejected at decode time: hand-craft frames the
	// encoder refuses to produce.
	over := append([]byte(nil), good...)
	// member count lives at offset 1+4+8+8+4+2 = 27..28 (LE u16)
	over[27], over[28] = 0xFF, 0xFF
	if _, err := DecodeMembership(over); err == nil {
		t.Fatal("oversized member count accepted")
	}
	dup := AppendMembership(nil, &Membership{
		Epoch: 0, Step: 0, Cursor: 0, Parts: 1, Joiner: -1,
		Members: []Member{{Addr: "a:1", GPUs: 1}, {Addr: "b:1", GPUs: 1}},
	})
	// Rewrite member 1's addr bytes to member 0's ("a:1" == "b:1" length).
	copy(dup[len(dup)-6:len(dup)-3], "a:1")
	if _, err := DecodeMembership(dup); err == nil {
		t.Fatal("duplicate-rank frame accepted")
	}
	if _, err := DecodeMembership(nil); err == nil {
		t.Fatal("empty frame accepted")
	}

	jr := AppendJoinRequest(nil, sampleJoinRequests()[0])
	for n := 0; n < len(jr); n++ {
		if _, err := DecodeJoinRequest(jr[:n]); err == nil {
			t.Fatalf("join request truncation to %d bytes accepted", n)
		}
	}
	if _, err := DecodeJoinRequest(append(append([]byte(nil), jr...), 7)); err == nil {
		t.Fatal("join request trailing byte accepted")
	}
}

// FuzzMembershipDecode pins the §8 discipline on the membership frames:
// any input either errors or decodes to a value whose canonical
// re-encoding round-trips — and nothing panics. The corpus is seeded
// from the unit-test samples plus targeted malformations.
func FuzzMembershipDecode(f *testing.F) {
	for _, m := range sampleMemberships() {
		f.Add(AppendMembership(nil, m))
	}
	for _, r := range sampleJoinRequests() {
		f.Add(AppendJoinRequest(nil, r))
	}
	good := AppendMembership(nil, sampleMemberships()[1])
	f.Add(good[:len(good)/2])                      // truncation
	f.Add(append(append([]byte(nil), good...), 0)) // trailing byte
	over := append([]byte(nil), good...)
	over[27], over[28] = 0xFF, 0xFF
	f.Add(over) // oversized member count
	f.Add([]byte{membershipVersion})
	f.Add([]byte{99, 1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		if m, err := DecodeMembership(b); err == nil {
			enc := AppendMembership(nil, m)
			m2, err := DecodeMembership(enc)
			if err != nil {
				t.Fatalf("re-decode of canonical encoding failed: %v", err)
			}
			if !bytes.Equal(AppendMembership(nil, m2), enc) {
				t.Fatal("canonical encoding not byte-stable")
			}
		}
		if r, err := DecodeJoinRequest(b); err == nil {
			enc := AppendJoinRequest(nil, r)
			if r2, err := DecodeJoinRequest(enc); err != nil || *r2 != *r {
				t.Fatalf("join request canonical round-trip failed: %v", err)
			}
		}
	})
}

// dialElasticPair is dialPair with Elastic set, returning the fabrics
// and process 0's live listen address for joiners to knock on.
func dialElasticPair(t *testing.T, topo Topology) (*TCP, *TCP, string) {
	t.Helper()
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), ln1.Addr().String()}
	lns := []net.Listener{ln0, ln1}
	fabs := make([]*TCP, 2)
	derrs := make([]error, 2)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			fabs[p], derrs[p] = DialTCP(context.Background(), TCPConfig{
				Topo: topo, Process: p, Addrs: addrs, Listener: lns[p],
				DialTimeout: 10 * time.Second, Elastic: true,
			})
		}(p)
	}
	wg.Wait()
	for p, err := range derrs {
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}
	t.Cleanup(func() { fabs[0].Close(); fabs[1].Close() })
	return fabs[0], fabs[1], addrs[0]
}

// TestTCPJoinHandshake drives the full park-then-offer protocol: a
// joiner knocks on a running elastic fabric, the member sees the parked
// request, and OfferJoin delivers the agreed membership.
func TestTCPJoinHandshake(t *testing.T) {
	f0, f1, addr0 := dialElasticPair(t, twoMachineTopo())
	if f1.PendingJoin() != nil || f0.PendingJoin() != nil {
		t.Fatal("pending join on a fresh fabric")
	}

	offer := &Membership{Epoch: 1, Step: 10, Cursor: 20, Parts: 8, Joiner: 2, Members: []Member{
		{Addr: "127.0.0.1:7001", GPUs: 1},
		{Addr: "127.0.0.1:7002", GPUs: 1},
		{Addr: "127.0.0.1:7003", GPUs: 1},
	}}
	var got *Membership
	var joinErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, joinErr = RequestJoin(context.Background(),
			addr0, JoinRequest{Addr: "127.0.0.1:7003", GPUs: 1, Fingerprint: "none"}, 10*time.Second)
	}()

	// The knock lands on process 0's listener asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	var req *JoinRequest
	for req == nil {
		if time.Now().After(deadline) {
			t.Fatal("join request never parked")
		}
		req = f0.PendingJoin()
		time.Sleep(5 * time.Millisecond)
	}
	if req.Addr != "127.0.0.1:7003" || req.GPUs != 1 {
		t.Fatalf("parked request %+v", req)
	}
	if err := f0.OfferJoin(offer); err != nil {
		t.Fatal(err)
	}
	<-done
	if joinErr != nil {
		t.Fatal(joinErr)
	}
	if got.Joiner != 2 || len(got.Members) != 3 || got.Members[2].Addr != "127.0.0.1:7003" {
		t.Fatalf("joiner received %+v", got)
	}
	if err := f0.OfferJoin(offer); err == nil {
		t.Fatal("second OfferJoin with no parked joiner must fail")
	}
}

// TestTCPJoinRejections: a fingerprint mismatch is fatal to the joiner
// (ErrCompressionMismatch); an address that is already a member is
// dropped; a second concurrent joiner is told busy and keeps retrying
// until the first is released.
func TestTCPJoinRejections(t *testing.T) {
	f0, _, addr0 := dialElasticPair(t, twoMachineTopo())

	_, err := RequestJoin(context.Background(), addr0,
		JoinRequest{Addr: "127.0.0.1:7003", GPUs: 1, Fingerprint: "topk0.01+f16"}, 5*time.Second)
	if !errors.Is(err, errs.ErrCompressionMismatch) {
		t.Fatalf("fingerprint mismatch gave %v, want ErrCompressionMismatch", err)
	}

	// Re-using a member address never parks; the request times out.
	_, err = RequestJoin(context.Background(), addr0,
		JoinRequest{Addr: f0.addrs[1], GPUs: 1, Fingerprint: "none"}, 500*time.Millisecond)
	if err == nil {
		t.Fatal("duplicate member address was admitted")
	}
	if f0.PendingJoin() != nil {
		t.Fatal("duplicate member address parked")
	}

	// First joiner parks; a second gets busy-bounced until the first is
	// offered its membership, then succeeds.
	res := make(chan error, 2)
	join := func(addr string) {
		_, err := RequestJoin(context.Background(), addr0,
			JoinRequest{Addr: addr, GPUs: 1, Fingerprint: "none"}, 10*time.Second)
		res <- err
	}
	go join("127.0.0.1:7003")
	deadline := time.Now().Add(5 * time.Second)
	for f0.PendingJoin() == nil {
		if time.Now().After(deadline) {
			t.Fatal("first joiner never parked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	go join("127.0.0.1:7004")
	time.Sleep(50 * time.Millisecond) // give the second knock time to bounce
	offer := func(addr string) *Membership {
		return &Membership{Epoch: 1, Step: 0, Cursor: 0, Parts: 1, Joiner: 2, Members: []Member{
			{Addr: "127.0.0.1:7001", GPUs: 1},
			{Addr: "127.0.0.1:7002", GPUs: 1},
			{Addr: addr, GPUs: 1},
		}}
	}
	if err := f0.OfferJoin(offer(f0.PendingJoin().Addr)); err != nil {
		t.Fatal(err)
	}
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	for f0.PendingJoin() == nil {
		if time.Now().After(deadline) {
			t.Fatal("second joiner never parked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := f0.OfferJoin(offer(f0.PendingJoin().Addr)); err != nil {
		t.Fatal(err)
	}
	if err := <-res; err != nil {
		t.Fatal(err)
	}
}

// TestTCPElasticShutdownReleasesParkedJoiner: closing the fabric closes
// the listener and any parked connection; the joiner's RequestJoin sees
// the teardown as a retryable close, not a hang.
func TestTCPElasticShutdownReleasesParkedJoiner(t *testing.T) {
	f0, f1, addr0 := dialElasticPair(t, twoMachineTopo())
	res := make(chan error, 1)
	go func() {
		_, err := RequestJoin(context.Background(), addr0,
			JoinRequest{Addr: "127.0.0.1:7003", GPUs: 1, Fingerprint: "none"}, 2*time.Second)
		res <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for f0.PendingJoin() == nil {
		if time.Now().After(deadline) {
			t.Fatal("joiner never parked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	f0.Close()
	f1.Close()
	if err := <-res; err == nil {
		t.Fatal("parked joiner outlived the fabric without an error")
	}
}
