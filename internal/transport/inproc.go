package transport

import (
	"fmt"
	"sync"

	"parallax/internal/errs"
	"parallax/internal/tensor"
)

// Inproc is the in-memory channel fabric: one buffered FIFO channel per
// directed endpoint pair plus a shared recycle pool for float chunk
// buffers. It is the single-process fast path — no serialization, no
// extra copies beyond the one pooled-buffer copy the ring algorithms
// always paid — and the transport every test harness defaults to.
type Inproc struct {
	topo  Topology
	pipes [][]chan message // pipes[src][dst]
	pool  *bufPool

	closeOnce sync.Once
	closed    chan struct{}
}

// pipeDepth sizes the per-pair channel buffers so the ring algorithms'
// send-then-receive step pattern cannot deadlock (same constant the
// collective world used).
const pipeDepth = 8

// NewInproc creates a channel fabric hosting every endpoint of the
// topology in this process.
func NewInproc(topo Topology) *Inproc {
	if err := topo.Validate(); err != nil {
		panic(err.Error())
	}
	n := topo.Endpoints()
	f := &Inproc{topo: topo, pool: newBufPool(), closed: make(chan struct{})}
	f.pipes = make([][]chan message, n)
	for s := range f.pipes {
		f.pipes[s] = make([]chan message, n)
		for d := range f.pipes[s] {
			f.pipes[s][d] = make(chan message, pipeDepth)
		}
	}
	return f
}

// Topology returns the fabric's endpoint layout.
func (f *Inproc) Topology() Topology { return f.topo }

// Local reports true for every endpoint: the whole world lives here.
func (f *Inproc) Local(rank int) bool { return rank >= 0 && rank < f.topo.Endpoints() }

// Distributed reports false: nothing crosses a process boundary.
func (f *Inproc) Distributed() bool { return false }

// Stats reports zeros: no bytes ever touch a wire.
func (f *Inproc) Stats() Stats { return Stats{} }

// Err reports nil: channels cannot break, so the in-process fabric only
// ever closes orderly.
func (f *Inproc) Err() error { return nil }

// Done is closed when the fabric shuts down.
func (f *Inproc) Done() <-chan struct{} { return f.closed }

// Conduit returns endpoint rank's handle.
func (f *Inproc) Conduit(rank int) Conduit {
	if rank < 0 || rank >= f.topo.Endpoints() {
		panic(fmt.Sprintf("transport: endpoint %d out of range [0,%d)", rank, f.topo.Endpoints()))
	}
	return inprocConduit{f: f, rank: rank}
}

// Close releases blocked RecvPS calls. Idempotent.
func (f *Inproc) Close() error {
	f.closeOnce.Do(func() { close(f.closed) })
	return nil
}

// inprocConduit is one endpoint's handle; it is a value (two words) so
// handing conduits around allocates nothing.
type inprocConduit struct {
	f    *Inproc
	rank int
}

func (c inprocConduit) Rank() int { return c.rank }

func (c inprocConduit) send(dst int, m message) {
	select {
	case c.f.pipes[c.rank][dst] <- m:
	case <-c.f.closed:
		// Shutdown: the peer is gone; drop the message.
	}
}

// recv blocks for the next message from src, asserting the rendezvous
// tag: a mismatch means two endpoints' protocols diverged, which is a
// bug, so it panics rather than silently reordering. ok is false once
// the fabric is closed.
func (c inprocConduit) recv(src int, tag string) (message, bool) {
	pipe := c.f.pipes[src][c.rank]
	var m message
	select {
	case m = <-pipe: // fast path: message already queued
	default:
		select {
		case m = <-pipe:
		case <-c.f.closed:
			return message{}, false
		}
	}
	if m.tag != tag {
		panic(fmt.Sprintf("transport: endpoint %d expected tag %q from %d, got %q",
			c.rank, tag, src, m.tag))
	}
	return m, true
}

// mustRecv is recv for the protocol paths that cannot proceed without
// the fabric (collective phases); a closed fabric mid-collective raises
// the typed ClosedPanic the trainer's wrappers recover into an error.
func (c inprocConduit) mustRecv(src int, tag string, k kind) message {
	m, ok := c.recv(src, tag)
	if !ok {
		panic(ClosedPanic{Err: fmt.Errorf(
			"transport: endpoint %d recv %q from %d on closed fabric: %w",
			c.rank, tag, src, errs.ErrClosed)})
	}
	if m.kind != k {
		panic(fmt.Sprintf("transport: endpoint %d tag %q from %d: kind %d, want %d",
			c.rank, tag, src, m.kind, k))
	}
	return m
}

func (c inprocConduit) SendF32(dst int, tag string, data []float32) {
	buf := c.f.pool.get(len(data))
	copy(buf, data)
	c.send(dst, message{tag: tag, kind: kindF32, f32: buf})
}

func (c inprocConduit) RecvF32(src int, tag string) []float32 {
	return c.mustRecv(src, tag, kindF32).f32
}

// SendF32C ignores the codec: nothing here touches a wire, and the data
// plane has already quantized the values onto the codec's grid, so the
// plain copy delivers exactly what the TCP fabric's compressed frame
// would.
func (c inprocConduit) SendF32C(dst int, tag string, data []float32, codec Codec) {
	c.SendF32(dst, tag, data)
}

func (c inprocConduit) SendF32Sparse(dst int, tag string, ch SparseChunk) {
	c.send(dst, message{tag: tag, kind: kindF32Sparse, topk: copyChunk(ch)})
}

func (c inprocConduit) RecvF32Sparse(src int, tag string) SparseChunk {
	return *c.mustRecv(src, tag, kindF32Sparse).topk
}

// copyChunk detaches a sparsified chunk from the sender's reusable
// selection scratch (the send borrows, the receiver owns).
func copyChunk(ch SparseChunk) *SparseChunk {
	return &SparseChunk{
		Len:   ch.Len,
		Idx:   append([]int32(nil), ch.Idx...),
		Vals:  append([]float32(nil), ch.Vals...),
		Codec: ch.Codec,
	}
}

func (c inprocConduit) GetBuf(n int) []float32 { return c.f.pool.get(n) }
func (c inprocConduit) PutBuf(b []float32)     { c.f.pool.put(b) }

func (c inprocConduit) SendSparse(dst int, tag string, s *tensor.Sparse) {
	c.send(dst, message{tag: tag, kind: kindSparse, sparse: s})
}

func (c inprocConduit) RecvSparse(src int, tag string) *tensor.Sparse {
	return c.mustRecv(src, tag, kindSparse).sparse
}

func (c inprocConduit) SendScalar(dst int, tag string, v float64) {
	c.send(dst, message{tag: tag, kind: kindScalar, scalar: v})
}

func (c inprocConduit) RecvScalar(src int, tag string) float64 {
	return c.mustRecv(src, tag, kindScalar).scalar
}

func (c inprocConduit) SendPS(dst int, tag string, m *PSMsg) {
	c.send(dst, message{tag: tag, kind: kindPS, ps: m})
}

func (c inprocConduit) RecvPS(src int, tag string) *PSMsg {
	m, ok := c.recv(src, tag)
	if !ok {
		return nil
	}
	if m.kind != kindPS {
		panic(fmt.Sprintf("transport: endpoint %d tag %q from %d: kind %d, want PS",
			c.rank, tag, src, m.kind))
	}
	return m.ps
}
