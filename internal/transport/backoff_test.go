package transport

import (
	"math/rand"
	"testing"
	"time"
)

// The raw schedule (no jitter) must grow geometrically from Base and
// saturate at Max.
func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 160 * time.Millisecond, Factor: 2}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		160 * time.Millisecond,
		160 * time.Millisecond, // capped
		160 * time.Millisecond,
	}
	for k, w := range want {
		if got := b.delay(k, nil); got != w {
			t.Fatalf("attempt %d: delay %v, want %v", k, got, w)
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	if got := b.delay(0, nil); got != 25*time.Millisecond {
		t.Fatalf("default base: %v, want 25ms", got)
	}
	if got := b.delay(100, nil); got != time.Second {
		t.Fatalf("default cap: %v, want 1s", got)
	}
}

// Jitter must stay inside ±Jitter of the raw delay and actually vary.
func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.2}
	rng := rand.New(rand.NewSource(1))
	raw := b.delay(2, nil) // 400ms
	lo := time.Duration(float64(raw) * 0.8)
	hi := time.Duration(float64(raw) * 1.2)
	seen := map[time.Duration]bool{}
	for i := 0; i < 100; i++ {
		d := b.delay(2, rng)
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct delays in 100 draws", len(seen))
	}
}

// Factor <= 1 degrades to a constant cadence rather than shrinking.
func TestBackoffNonGrowingFactorClamped(t *testing.T) {
	b := Backoff{Base: 30 * time.Millisecond, Max: time.Second, Factor: 0.5}
	for k := 0; k < 5; k++ {
		if got := b.delay(k, nil); got < 30*time.Millisecond {
			t.Fatalf("attempt %d: delay %v shrank below base", k, got)
		}
	}
}
