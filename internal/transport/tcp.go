package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"parallax/internal/errs"
	"parallax/internal/tensor"
)

// TCPConfig configures a TCP fabric for one agent process.
type TCPConfig struct {
	// Topo is the cluster's endpoint layout; MachineOfWorker must be set
	// when it spans more than one machine.
	Topo Topology
	// Process is the index of the machine this process hosts.
	Process int
	// Addrs[i] is process i's listen address ("host:port").
	Addrs []string
	// Listener optionally supplies a pre-bound listener for
	// Addrs[Process] (tests bind ":0" and pass the resolved address to
	// peers). The fabric takes ownership.
	Listener net.Listener
	// DialTimeout bounds the whole rendezvous — dialing lower-indexed
	// peers and accepting higher-indexed ones. Default 10s. A deadline
	// on DialTCP's context tightens this further; context cancellation
	// aborts the rendezvous immediately.
	DialTimeout time.Duration
	// DialBackoff shapes the retry cadence while dialing peers that have
	// not bound their listener yet: capped exponential growth with
	// jitter. Zero values take the Backoff defaults (25ms base, 1s cap,
	// x2 growth, ±20% jitter).
	DialBackoff Backoff
	// Epoch is the fabric generation this process rendezvouses at. The
	// handshake carries it, and peers at different generations refuse to
	// connect (ErrEpochMismatch): after a failure, survivors re-form the
	// fabric at epoch+1 and a stale restarted agent must catch up before
	// joining. Default 0.
	Epoch int
	// HeartbeatInterval is the keep-alive cadence per connection; every
	// interval each side writes an empty control frame so the peer's
	// read deadline keeps sliding while the data plane is idle. Default
	// 1s; < 0 disables heartbeats AND read deadlines (then a dead peer
	// is only detected when the kernel reports the broken connection).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the read deadline armed before every frame
	// read: a connection silent for this long marks its peer failed.
	// Default 10 x HeartbeatInterval.
	HeartbeatTimeout time.Duration
	// MaxFrame caps one wire frame's payload bytes. Default 1 GiB.
	MaxFrame int
	// Policy is the wire compression policy this process runs under. The
	// rendezvous handshake carries its fingerprint, and peers whose
	// fingerprints differ refuse to connect (ErrCompressionMismatch):
	// a policy split would desync the replicas' quantization grids.
	Policy Policy
	// Elastic keeps the rendezvous listener open after the fabric is up,
	// so prospective members can knock with the join handshake
	// (membership.go) while training runs. Without it the listener closes
	// once every peer is connected and membership is static.
	Elastic bool
}

// handshakeMagic opens every peer connection, followed by the dialer's
// process index as u16, the length of its compression-policy fingerprint
// as u16, its fabric epoch as u32, and the fingerprint bytes; the
// acceptor answers with one ack byte (ackOK = accepted, ackPolicy =
// compression fingerprints differ, ackEpoch = fabric generations
// differ).
var handshakeMagic = [4]byte{'P', 'X', 'A', '2'}

const (
	ackPolicy = 0 // compression policy fingerprint mismatch
	ackOK     = 1
	ackEpoch  = 2 // fabric epoch mismatch
)

// TCP is the wire fabric: persistent length-prefixed framed connections,
// one dialer/listener pair per peer process, reused across steps.
// Endpoint pairs colocated in this process exchange over the same
// channel fabric Inproc uses; only cross-process pairs touch a socket.
//
// Rendezvous is static: process p dials every peer q < p and accepts
// from every peer q > p, so each unordered process pair shares exactly
// one connection. A dedicated reader goroutine per connection drains
// frames into per-(source, destination, tag) queues, so a peer's send
// never blocks on this side's consumption order — the property that
// keeps concurrent large sends from deadlocking on kernel socket
// buffers.
//
// Failure model is fail-stop per epoch, with attribution: a broken or
// silent connection (heartbeat timeout) marks its peer failed, the
// first observer broadcasts the failed rank to the other survivors,
// and the whole fabric shuts down — sends drop, RecvPS returns nil,
// collective receives panic with the typed ClosedPanic value. Err()
// then reports the rank-attributed *errs.PeerFailure, and the layers
// above may re-form a fresh fabric at epoch+1 (DESIGN.md §12) instead
// of dying.
type TCP struct {
	topo     Topology
	proc     int
	epoch    int
	maxFrame int
	pool     *bufPool

	// Elastic-membership state: the listener kept open for joiners, this
	// process's policy fingerprint and the cluster address list (to vet
	// join requests), and at most one parked joiner connection awaiting
	// an admission offer (membership.go).
	elastic     bool
	fingerprint string
	addrs       []string
	ln          net.Listener
	joinMu      sync.Mutex
	joinConn    net.Conn
	joinReq     *JoinRequest

	hbInterval time.Duration // <= 0: heartbeats and read deadlines off
	hbTimeout  time.Duration

	failMu  sync.Mutex
	failure error // first *errs.PeerFailure observed, nil while healthy

	pipes [][]chan message // local-pair short circuit, nil elsewhere
	conns []*wireConn      // per peer process, nil for self

	inboxMu sync.Mutex
	inbox   map[inboxKey]chan message

	sent     atomic.Int64
	recv     atomic.Int64
	sentRaw  atomic.Int64 // f32-equivalent bytes of compressed frames
	sentComp atomic.Int64 // actual wire bytes of the same frames

	closeOnce sync.Once
	closed    chan struct{}
	readers   sync.WaitGroup
}

type inboxKey struct {
	src, dst int
	tag      string
}

// wireConn is one peer connection: writes are serialized under mu and
// framed into a reusable scratch buffer, so steady-state sends allocate
// nothing.
type wireConn struct {
	conn net.Conn
	mu   sync.Mutex
	buf  []byte
}

// DialTCP establishes the fabric: it listens for higher-indexed peers,
// dials lower-indexed ones (retrying, so agents may start in any
// order), and returns once every peer connection is up. The rendezvous
// deadline is the earlier of ctx's deadline and now+DialTimeout, and
// cancelling ctx aborts the rendezvous immediately (the returned error
// then wraps ctx's error, so callers can match it with errors.Is). On
// failure everything opened so far is torn down and an error returned.
func DialTCP(ctx context.Context, cfg TCPConfig) (*TCP, error) {
	topo := cfg.Topo
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	procs := topo.Processes()
	if procs > 1 && topo.MachineOfWorker == nil {
		return nil, fmt.Errorf("transport: TCP fabric over %d machines needs MachineOfWorker", procs)
	}
	if cfg.Process < 0 || cfg.Process >= procs {
		return nil, fmt.Errorf("transport: process %d out of range [0,%d)", cfg.Process, procs)
	}
	if len(cfg.Addrs) != procs {
		return nil, fmt.Errorf("transport: %d addresses for %d processes", len(cfg.Addrs), procs)
	}
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	maxFrame := cfg.MaxFrame
	if maxFrame <= 0 {
		maxFrame = maxFrameDefault
	}
	if maxFrame >= frameCtrlMin {
		// The top length-word values are reserved for control frames.
		maxFrame = frameCtrlMin - 1
	}
	hbInterval := cfg.HeartbeatInterval
	if hbInterval == 0 {
		hbInterval = time.Second
	}
	hbTimeout := cfg.HeartbeatTimeout
	if hbTimeout <= 0 {
		hbTimeout = 10 * hbInterval
	}
	deadline := time.Now().Add(timeout) //parallax:allow(detsource) -- rendezvous deadline is wall-clock by design; the data plane starts only after the epoch-fenced handshake
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}

	f := &TCP{
		topo:       topo,
		proc:       cfg.Process,
		epoch:      cfg.Epoch,
		maxFrame:   maxFrame,
		pool:       newBufPool(),
		hbInterval: hbInterval,
		hbTimeout:  hbTimeout,
		conns:      make([]*wireConn, procs),
		inbox:      make(map[inboxKey]chan message),
		closed:     make(chan struct{}),
	}
	n := topo.Endpoints()
	f.pipes = make([][]chan message, n)
	for s := 0; s < n; s++ {
		if !f.Local(s) {
			continue
		}
		f.pipes[s] = make([]chan message, n)
		for d := 0; d < n; d++ {
			if f.Local(d) {
				f.pipes[s][d] = make(chan message, pipeDepth)
			}
		}
	}

	// An elastic fabric listens even when no peer rendezvous is expected
	// (the highest-indexed process, or a single-machine cluster): the
	// listener is the door joiners knock on.
	nAccept := procs - 1 - cfg.Process
	var ln net.Listener
	if nAccept > 0 || cfg.Elastic {
		ln = cfg.Listener
		if ln == nil {
			var err error
			if ln, err = net.Listen("tcp", cfg.Addrs[cfg.Process]); err != nil {
				return nil, err
			}
		}
	} else if cfg.Listener != nil {
		cfg.Listener.Close()
	}
	fingerprint := cfg.Policy.Fingerprint()
	f.elastic = cfg.Elastic
	f.fingerprint = fingerprint
	f.addrs = append([]string(nil), cfg.Addrs...)
	type acceptRes struct {
		peer int
		conn net.Conn
		err  error
	}
	accCh := make(chan acceptRes, nAccept+4)
	fail := func(err error) (*TCP, error) {
		if ln != nil {
			ln.Close() // ends the accept goroutine
		}
		f.closeJoin()
		for _, wc := range f.conns {
			if wc != nil {
				wc.conn.Close()
			}
		}
		for { // close accepted-but-unclaimed connections
			select {
			case r := <-accCh:
				if r.conn != nil {
					r.conn.Close()
				}
			default:
				return nil, err
			}
		}
	}

	if ln != nil {
		// Accept until the listener closes, not until nAccept good
		// handshakes: a duplicate connection from a restarted peer must
		// not eat a genuine peer's slot. On a static fabric the success
		// path closes the listener once all peers are connected (the fail
		// path closes it on error); an elastic fabric keeps it open for
		// joiners until shutdown, so the goroutine is tracked and reaped
		// by Close.
		f.readers.Add(1)
		go func() {
			defer f.readers.Done()
			for {
				conn, err := ln.Accept()
				if err != nil {
					return // listener closed; a premature break surfaces as a timeout below
				}
				conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //parallax:allow(detsource) -- handshake read deadline; connection management, not step control flow
				var magic [4]byte
				if _, err := io.ReadFull(conn, magic[:]); err != nil {
					conn.Close()
					continue
				}
				if magic == joinMagic {
					f.acceptJoin(conn)
					continue
				}
				if magic != handshakeMagic {
					conn.Close() // junk
					continue
				}
				peer, peerFP, peerEpoch, err := readHandshake(conn)
				if err != nil || peer <= cfg.Process || peer >= procs {
					conn.Close() // junk or misrouted connection
					continue
				}
				if peerEpoch != cfg.Epoch {
					// A peer from another fabric generation: tell it
					// (ackEpoch). When the peer is AHEAD, this process is
					// the stale one — fail the rendezvous so the caller
					// re-reads the cluster epoch and retries; when the peer
					// is behind, keep accepting (the stale peer will catch
					// up and redial).
					conn.Write([]byte{ackEpoch})
					conn.Close()
					if peerEpoch > cfg.Epoch {
						select {
						case accCh <- acceptRes{err: fmt.Errorf(
							"transport: process %d at epoch %d, peer %d already at %d: %w",
							cfg.Process, cfg.Epoch, peer, peerEpoch, errs.ErrEpochMismatch)}:
						default:
						}
					}
					continue
				}
				if peerFP != fingerprint {
					// A real peer with the wrong policy: tell it
					// (ackPolicy), then fail the rendezvous — this is a
					// deployment error, not junk to ignore.
					conn.Write([]byte{ackPolicy})
					conn.Close()
					select {
					case accCh <- acceptRes{err: fmt.Errorf(
						"transport: process %d compression policy %q, peer %d has %q: %w",
						cfg.Process, fingerprint, peer, peerFP, errs.ErrCompressionMismatch)}:
					default:
					}
					continue
				}
				if _, err := conn.Write([]byte{ackOK}); err != nil {
					conn.Close()
					continue
				}
				select {
				case accCh <- acceptRes{peer: peer, conn: conn}:
				default:
					conn.Close() // rendezvous already over
				}
			}
		}()
	}

	for q := 0; q < cfg.Process; q++ {
		hs := append(append([]byte(nil), handshakeMagic[:]...), 0, 0, 0, 0, 0, 0, 0, 0)
		binary.LittleEndian.PutUint16(hs[4:], uint16(cfg.Process))
		binary.LittleEndian.PutUint16(hs[6:], uint16(len(fingerprint)))
		binary.LittleEndian.PutUint32(hs[8:], uint32(cfg.Epoch))
		hs = append(hs, fingerprint...)
		// A write error or a dropped connection mid-handshake means the
		// peer's fabric tore down between accepting and answering — an
		// epoch transition in flight (elastic grow, recovery rebind).
		// That is as transient as connection-refused, so redial; only an
		// explicit rejection (wrong epoch, wrong policy) is final.
		rng := rand.New(rand.NewSource(int64(cfg.Process)*104729 + int64(q)*7919 + 1))
		var conn net.Conn
		for attempt := 0; ; attempt++ {
			c, err := dialRetry(ctx, cfg.Addrs[q], deadline, cfg.DialBackoff)
			if err != nil {
				return fail(fmt.Errorf("transport: process %d dialing peer %d (%s): %w",
					cfg.Process, q, cfg.Addrs[q],
					&errs.PeerFailure{Rank: q, Epoch: cfg.Epoch, Cause: err}))
			}
			herr := func() error {
				if _, err := c.Write(hs); err != nil {
					return fmt.Errorf("transport: handshake to peer %d: %w", q, err)
				}
				var ack [1]byte
				c.SetReadDeadline(deadline)
				if _, err := io.ReadFull(c, ack[:]); err != nil {
					return fmt.Errorf("transport: handshake ack from peer %d: %w", q, err)
				}
				c.SetReadDeadline(time.Time{})
				switch ack[0] {
				case ackOK:
					return nil
				case ackEpoch:
					return fmt.Errorf("transport: process %d at epoch %d rejected by peer %d: %w",
						cfg.Process, cfg.Epoch, q, errs.ErrEpochMismatch)
				default:
					return fmt.Errorf("transport: process %d compression policy %q rejected by peer %d: %w",
						cfg.Process, fingerprint, q, errs.ErrCompressionMismatch)
				}
			}()
			if herr == nil {
				conn = c
				break
			}
			c.Close()
			if errors.Is(herr, errs.ErrEpochMismatch) || errors.Is(herr, errs.ErrCompressionMismatch) ||
				time.Now().After(deadline) || ctx.Err() != nil { //parallax:allow(detsource) -- rendezvous retry budget; wall-clock by design
				return fail(herr)
			}
			select {
			case <-ctx.Done():
				return fail(ctx.Err())
			case <-time.After(cfg.DialBackoff.delay(attempt, rng)): //parallax:allow(detsource) -- dial backoff pacing; never in step control flow
			}
		}
		f.conns[q] = &wireConn{conn: conn}
	}
	// A rendezvous timeout is a peer failure too — some expected agent
	// never showed up — so it carries the first missing rank and matches
	// errs.ErrPeerFailed, letting recovery policies treat "died before
	// connecting" and "died mid-step" uniformly.
	timeoutErr := func(got int) error {
		missing := -1
		for p := cfg.Process + 1; p < procs; p++ {
			if f.conns[p] == nil {
				missing = p
				break
			}
		}
		return fmt.Errorf("transport: process %d timed out waiting for %d peer(s): %w",
			cfg.Process, nAccept-got,
			&errs.PeerFailure{Rank: missing, Epoch: cfg.Epoch, Cause: errs.ErrPeerFailed})
	}
	for got := 0; got < nAccept; {
		wait := time.Until(deadline) //parallax:allow(detsource) -- accept-side rendezvous budget; wall-clock by design
		if wait <= 0 {
			return fail(timeoutErr(got))
		}
		select {
		case r := <-accCh:
			if r.err != nil {
				return fail(r.err)
			}
			if f.conns[r.peer] != nil {
				r.conn.Close() // duplicate from a retrying peer
				continue
			}
			f.conns[r.peer] = &wireConn{conn: r.conn}
			got++
		case <-ctx.Done():
			return fail(fmt.Errorf("transport: process %d rendezvous aborted: %w",
				cfg.Process, ctx.Err()))
		case <-time.After(wait): //parallax:allow(detsource) -- accept-side rendezvous budget; wall-clock by design
			return fail(timeoutErr(got))
		}
	}
	if ln != nil {
		if f.elastic {
			f.ln = ln // stays open: joiners knock here (DESIGN.md §14)
		} else {
			ln.Close() // all peers connected; membership is static
		}
	}
	for peer, wc := range f.conns {
		if wc == nil {
			continue
		}
		f.readers.Add(1)
		go f.reader(peer, wc.conn)
		if f.hbInterval > 0 {
			f.readers.Add(1)
			go f.heartbeatLoop(wc)
		}
	}
	return f, nil
}

// readHandshake reads the rendezvous header after the accept loop has
// consumed (and matched) the 4 magic bytes; the loop armed the read
// deadline, readHandshake clears it.
func readHandshake(conn net.Conn) (peer int, fp string, epoch int, err error) {
	defer conn.SetReadDeadline(time.Time{})
	var hs [8]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		return 0, "", 0, err
	}
	peer = int(binary.LittleEndian.Uint16(hs[0:2]))
	epoch = int(binary.LittleEndian.Uint32(hs[4:8]))
	raw := make([]byte, binary.LittleEndian.Uint16(hs[2:4]))
	if _, err := io.ReadFull(conn, raw); err != nil {
		return 0, "", 0, err
	}
	return peer, string(raw), epoch, nil
}

// acceptJoin handles one join-handshake connection (magic already
// consumed): decode the request, vet it, and park the connection until
// the session layer agrees on admission and calls OfferJoin (or the
// fabric shuts down). One joiner parks at a time; later ones are told
// to retry (joinAckBusy).
func (f *TCP) acceptJoin(conn net.Conn) {
	if !f.elastic {
		conn.Close()
		return
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		conn.Close()
		return
	}
	n := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if n <= 0 || n > maxJoinFrame {
		conn.Close()
		return
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		conn.Close()
		return
	}
	req, err := DecodeJoinRequest(payload)
	if err != nil {
		conn.Close()
		return
	}
	if req.Fingerprint != f.fingerprint {
		conn.Write([]byte{ackPolicy}) // a different job, not a member-to-be
		conn.Close()
		return
	}
	for _, a := range f.addrs {
		if a == req.Addr {
			conn.Close() // already a member (a duplicate rank); let it time out
			return
		}
	}
	conn.SetReadDeadline(time.Time{})
	f.joinMu.Lock()
	if f.joinConn != nil {
		f.joinMu.Unlock()
		conn.Write([]byte{joinAckBusy})
		conn.Close()
		return
	}
	select {
	case <-f.closed:
		f.joinMu.Unlock()
		conn.Close()
		return
	default:
	}
	if _, err := conn.Write([]byte{joinAckWait}); err != nil {
		f.joinMu.Unlock()
		conn.Close()
		return
	}
	f.joinConn, f.joinReq = conn, req
	f.joinMu.Unlock()
}

// PendingJoin returns a copy of the join request parked on this
// process's listener, or nil when none is. The session layer polls it
// at step boundaries to turn knocks into admission proposals.
func (f *TCP) PendingJoin() *JoinRequest {
	f.joinMu.Lock()
	defer f.joinMu.Unlock()
	if f.joinReq == nil {
		return nil
	}
	r := *f.joinReq
	return &r
}

// OfferJoin delivers the agreed membership to the parked joiner and
// releases the connection. Call it only after the new epoch is durable
// (EPOCH/MEMBERS written): the joiner dials the new epoch the moment
// the offer lands.
func (f *TCP) OfferJoin(m *Membership) error {
	f.joinMu.Lock()
	conn := f.joinConn
	f.joinConn, f.joinReq = nil, nil
	f.joinMu.Unlock()
	if conn == nil {
		return fmt.Errorf("transport: no joiner parked on process %d", f.proc)
	}
	defer conn.Close()
	payload := AppendMembership(nil, m)
	buf := appendU32(make([]byte, 0, 4+len(payload)), uint32(len(payload)))
	buf = append(buf, payload...)
	conn.SetWriteDeadline(time.Now().Add(10 * time.Second)) //parallax:allow(detsource) -- join-offer write deadline; connection management, not step control flow
	if _, err := conn.Write(buf); err != nil {
		return fmt.Errorf("transport: delivering join offer: %w", err)
	}
	return nil
}

// closeJoin drops a parked joiner connection, if any; the joiner sees
// the close and retries against the next epoch's listener.
func (f *TCP) closeJoin() {
	f.joinMu.Lock()
	conn := f.joinConn
	f.joinConn, f.joinReq = nil, nil
	f.joinMu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// dialRetry dials until the deadline under the capped-exponential
// backoff schedule; agents may start in any order, and a recovering
// fleet's redial storm is spread by the schedule's jitter.
func dialRetry(ctx context.Context, addr string, deadline time.Time, bo Backoff) (net.Conn, error) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano())) //parallax:allow(detsource) -- redial jitter: deliberately unsynchronized pacing, spreads the fleet's redial storm
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		wait := time.Until(deadline) //parallax:allow(detsource) -- dial retry budget; wall-clock by design
		if wait <= 0 {
			return nil, fmt.Errorf("dial timed out")
		}
		if wait > time.Second {
			wait = time.Second
		}
		conn, err := net.DialTimeout("tcp", addr, wait)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) { //parallax:allow(detsource) -- dial retry budget; wall-clock by design
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(bo.delay(attempt, rng)): //parallax:allow(detsource) -- dial backoff pacing; never in step control flow
		}
	}
}

// Topology returns the fabric's endpoint layout.
func (f *TCP) Topology() Topology { return f.topo }

// Local reports whether an endpoint is hosted by this process.
func (f *TCP) Local(rank int) bool {
	return rank >= 0 && rank < f.topo.Endpoints() && f.topo.ProcessOf(rank) == f.proc
}

// Distributed reports whether the fabric spans processes.
func (f *TCP) Distributed() bool { return f.topo.Processes() > 1 }

// Stats returns the framed socket bytes moved so far.
func (f *TCP) Stats() Stats {
	return Stats{
		SentBytes:           f.sent.Load(),
		RecvBytes:           f.recv.Load(),
		SentBytesRaw:        f.sentRaw.Load(),
		SentBytesCompressed: f.sentComp.Load(),
	}
}

// Conduit returns the handle for a local endpoint.
func (f *TCP) Conduit(rank int) Conduit {
	if !f.Local(rank) {
		panic(fmt.Sprintf("transport: endpoint %d is not hosted by process %d", rank, f.proc))
	}
	return tcpConduit{f: f, rank: rank}
}

// Close tears the fabric down and waits for its reader goroutines.
// Idempotent; safe to call concurrently.
func (f *TCP) Close() error {
	f.shutdown()
	f.readers.Wait()
	return nil
}

// shutdown is Close minus the reader wait, so a reader detecting a
// broken connection can trigger teardown without deadlocking on itself.
func (f *TCP) shutdown() {
	f.closeOnce.Do(func() {
		close(f.closed)
		if f.ln != nil {
			f.ln.Close() // ends the elastic accept goroutine
		}
		f.closeJoin()
		for _, wc := range f.conns {
			if wc != nil {
				wc.conn.Close()
			}
		}
	})
}

// reader drains one peer connection into the per-(src, dst, tag) inbox
// queues. Every frame read is armed with the heartbeat read deadline
// (refreshed per chunk for large payloads, so a slow-but-alive bulk
// transfer never trips it); a timeout, read error, or decode error
// marks the peer failed and shuts the whole fabric down so blocked
// receivers fail fast — with attribution — instead of hanging.
func (f *TCP) reader(peer int, conn net.Conn) {
	defer f.readers.Done()
	br := bufio.NewReaderSize(conn, 1<<16)
	var lenBuf [4]byte
	var payload []byte
	for {
		if f.hbInterval > 0 {
			conn.SetReadDeadline(time.Now().Add(f.hbTimeout)) //parallax:allow(detsource) -- heartbeat read deadline: liveness detection, outside the data path
		}
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			f.readerFailed(peer, err)
			return
		}
		word := binary.LittleEndian.Uint32(lenBuf[:])
		switch word {
		case frameHeartbeat:
			continue
		case framePeerDown:
			// Another survivor observed a failure first; adopt its
			// attribution instead of blaming the messenger when its own
			// teardown reaches us.
			var rank [4]byte
			if _, err := io.ReadFull(br, rank[:]); err != nil {
				f.readerFailed(peer, err)
				return
			}
			failed := int(binary.LittleEndian.Uint32(rank[:]))
			f.recordFailure(failed, fmt.Errorf("reported down by process %d", peer))
			f.shutdown()
			return
		}
		n := int(word)
		if n > f.maxFrame {
			f.readerFailed(peer, fmt.Errorf("frame of %d bytes exceeds cap %d", n, f.maxFrame))
			return
		}
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		if err := f.readPayload(br, conn, payload[:n]); err != nil {
			f.readerFailed(peer, err)
			return
		}
		src, dst, m, err := decodeMessage(payload[:n], f.pool)
		if err != nil || !f.Local(dst) || f.topo.ProcessOf(src) != peer {
			if err == nil {
				err = fmt.Errorf("misrouted frame src=%d dst=%d", src, dst)
			}
			f.readerFailed(peer, err)
			return
		}
		f.recv.Add(int64(4 + n))
		select {
		case f.queue(src, dst, m.tag) <- m:
		case <-f.closed:
			return
		}
	}
}

// readPayload fills p, sliding the read deadline forward per chunk so a
// large frame is judged on progress, not total duration.
func (f *TCP) readPayload(br *bufio.Reader, conn net.Conn, p []byte) error {
	const chunk = 1 << 20
	for off := 0; off < len(p); {
		end := off + chunk
		if end > len(p) {
			end = len(p)
		}
		if f.hbInterval > 0 {
			conn.SetReadDeadline(time.Now().Add(f.hbTimeout)) //parallax:allow(detsource) -- heartbeat read deadline: liveness detection, outside the data path
		}
		m, err := io.ReadFull(br, p[off:end])
		off += m
		if err != nil {
			return err
		}
	}
	return nil
}

// queue returns the inbox channel for a (src, dst, tag) stream, creating
// it on first use (either side — reader or receiver — may get there
// first).
func (f *TCP) queue(src, dst int, tag string) chan message {
	key := inboxKey{src: src, dst: dst, tag: tag}
	f.inboxMu.Lock()
	q := f.inbox[key]
	if q == nil {
		q = make(chan message, 64)
		f.inbox[key] = q
	}
	f.inboxMu.Unlock()
	return q
}

// sendWire frames and writes one datagram to dst's process. The frame is
// built in the connection's reusable scratch buffer and written with one
// syscall; tensor data is copied exactly once, from the caller's view
// into the frame.
func (f *TCP) sendWire(src, dst int, m message) {
	wc := f.conns[f.topo.ProcessOf(dst)]
	wc.mu.Lock()
	wc.buf = append(wc.buf[:0], 0, 0, 0, 0)
	wc.buf = appendMessage(wc.buf, src, dst, m)
	binary.LittleEndian.PutUint32(wc.buf[:4], uint32(len(wc.buf)-4))
	n := len(wc.buf)
	_, err := wc.conn.Write(wc.buf) //parallax:allow(lockheld) -- wc.mu serializes socket writes by design; heartbeat deadlines bound a wedged peer
	wc.mu.Unlock()
	if err != nil {
		select {
		case <-f.closed:
			return // orderly shutdown: drop
		default:
			f.failPeer(f.topo.ProcessOf(dst), err)
			panic(ClosedPanic{Err: fmt.Errorf("transport: endpoint %d send tag %q to %d: %w",
				src, m.tag, dst, f.Err())})
		}
	}
	f.sent.Add(int64(n))
	if compressedFrame(m) {
		f.sentRaw.Add(int64(4 + rawFrameBytes(m)))
		f.sentComp.Add(int64(n))
	}
}

// tcpConduit is one endpoint's handle on a TCP fabric.
type tcpConduit struct {
	f    *TCP
	rank int
}

func (c tcpConduit) Rank() int { return c.rank }

func (c tcpConduit) sendLocal(dst int, m message) {
	select {
	case c.f.pipes[c.rank][dst] <- m:
	case <-c.f.closed:
	}
}

// recvLocal mirrors the inproc fabric's tag-asserting receive.
func (c tcpConduit) recvLocal(src int, tag string) (message, bool) {
	pipe := c.f.pipes[src][c.rank]
	var m message
	select {
	case m = <-pipe:
	default:
		select {
		case m = <-pipe:
		case <-c.f.closed:
			return message{}, false
		}
	}
	if m.tag != tag {
		panic(fmt.Sprintf("transport: endpoint %d expected tag %q from %d, got %q",
			c.rank, tag, src, m.tag))
	}
	return m, true
}

func (c tcpConduit) recvWire(src int, tag string) (message, bool) {
	q := c.f.queue(src, c.rank, tag)
	var m message
	select {
	case m = <-q:
	default:
		select {
		case m = <-q:
		case <-c.f.closed:
			return message{}, false
		}
	}
	return m, true
}

func (c tcpConduit) recvKind(src int, tag string, k kind) message {
	var m message
	var ok bool
	if c.f.Local(src) {
		m, ok = c.recvLocal(src, tag)
	} else {
		m, ok = c.recvWire(src, tag)
	}
	if !ok {
		panic(ClosedPanic{Err: c.f.closedErr(c.rank, tag, src)})
	}
	if m.kind != k {
		panic(fmt.Sprintf("transport: endpoint %d tag %q from %d: kind %d, want %d",
			c.rank, tag, src, m.kind, k))
	}
	return m
}

func (c tcpConduit) SendF32(dst int, tag string, data []float32) {
	if c.f.Local(dst) {
		buf := c.f.pool.get(len(data))
		copy(buf, data)
		c.sendLocal(dst, message{tag: tag, kind: kindF32, f32: buf})
		return
	}
	// Cross-process: serialize straight from the caller's view.
	c.f.sendWire(c.rank, dst, message{tag: tag, kind: kindF32, f32: data})
}

// SendF32C re-encodes the (already on-grid) chunk under codec on
// cross-process links; colocated destinations get the plain copy, which
// delivers the same bits.
func (c tcpConduit) SendF32C(dst int, tag string, data []float32, codec Codec) {
	if c.f.Local(dst) {
		c.SendF32(dst, tag, data)
		return
	}
	c.f.sendWire(c.rank, dst, message{tag: tag, kind: kindF32, codec: codec, f32: data})
}

func (c tcpConduit) SendF32Sparse(dst int, tag string, ch SparseChunk) {
	if c.f.Local(dst) {
		c.sendLocal(dst, message{tag: tag, kind: kindF32Sparse, topk: copyChunk(ch)})
		return
	}
	c.f.sendWire(c.rank, dst, message{tag: tag, kind: kindF32Sparse, topk: &ch})
}

func (c tcpConduit) RecvF32Sparse(src int, tag string) SparseChunk {
	return *c.recvKind(src, tag, kindF32Sparse).topk
}

func (c tcpConduit) RecvF32(src int, tag string) []float32 {
	return c.recvKind(src, tag, kindF32).f32
}

func (c tcpConduit) GetBuf(n int) []float32 { return c.f.pool.get(n) }
func (c tcpConduit) PutBuf(b []float32)     { c.f.pool.put(b) }

func (c tcpConduit) SendSparse(dst int, tag string, s *tensor.Sparse) {
	if c.f.Local(dst) {
		c.sendLocal(dst, message{tag: tag, kind: kindSparse, sparse: s})
		return
	}
	c.f.sendWire(c.rank, dst, message{tag: tag, kind: kindSparse, sparse: s})
}

func (c tcpConduit) RecvSparse(src int, tag string) *tensor.Sparse {
	return c.recvKind(src, tag, kindSparse).sparse
}

func (c tcpConduit) SendScalar(dst int, tag string, v float64) {
	m := message{tag: tag, kind: kindScalar, scalar: v}
	if c.f.Local(dst) {
		c.sendLocal(dst, m)
		return
	}
	c.f.sendWire(c.rank, dst, m)
}

func (c tcpConduit) RecvScalar(src int, tag string) float64 {
	return c.recvKind(src, tag, kindScalar).scalar
}

func (c tcpConduit) SendPS(dst int, tag string, m *PSMsg) {
	msg := message{tag: tag, kind: kindPS, ps: m}
	if c.f.Local(dst) {
		c.sendLocal(dst, msg)
		return
	}
	c.f.sendWire(c.rank, dst, msg)
}

func (c tcpConduit) RecvPS(src int, tag string) *PSMsg {
	var m message
	var ok bool
	if c.f.Local(src) {
		m, ok = c.recvLocal(src, tag)
	} else {
		m, ok = c.recvWire(src, tag)
	}
	if !ok {
		return nil
	}
	if m.kind != kindPS {
		panic(fmt.Sprintf("transport: endpoint %d tag %q from %d: kind %d, want PS",
			c.rank, tag, src, m.kind))
	}
	return m.ps
}
