package transport

import (
	"math/rand"
	"time"
)

// Backoff is a capped exponential retry schedule with jitter, used by
// the rendezvous dialer. Attempt k (0-based) sleeps
//
//	min(Base * Factor^k, Max) * (1 ± Jitter)
//
// so a fleet of agents restarting together spreads its reconnect storm
// instead of hammering a recovering listener in lockstep.
type Backoff struct {
	// Base is the first retry delay. Default 25ms.
	Base time.Duration
	// Max caps the delay growth. Default 1s.
	Max time.Duration
	// Factor multiplies the delay each attempt. Default 2. Values <= 1
	// are clamped to 1 (constant cadence).
	Factor float64
	// Jitter is the ± fraction of randomization applied to each delay,
	// in [0, 1). Default 0.2.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 25 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 || b.Jitter >= 1 {
		b.Jitter = 0.2
	}
	return b
}

// delay returns the sleep before retry attempt k (0-based). rng may be
// nil, which disables jitter (used by tests pinning the raw schedule).
func (b Backoff) delay(attempt int, rng *rand.Rand) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 0; i < attempt && d < float64(b.Max); i++ {
		d *= b.Factor
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if rng != nil && b.Jitter > 0 {
		d *= 1 + b.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}
