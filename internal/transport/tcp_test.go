package transport

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// dialPair builds the 2-process fabric of topo inside one test process:
// both listeners are pre-bound on ":0" so no fixed ports are needed, and
// both DialTCP calls run concurrently like real agents starting up.
func dialPair(t *testing.T, topo Topology) (*TCP, *TCP) {
	t.Helper()
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), "127.0.0.1:0"}
	fabs := make([]*TCP, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cfg := TCPConfig{Topo: topo, Process: p, Addrs: addrs, DialTimeout: 10 * time.Second}
			if p == 0 {
				cfg.Listener = ln0
			}
			fabs[p], errs[p] = DialTCP(context.Background(), cfg)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}
	t.Cleanup(func() { fabs[0].Close(); fabs[1].Close() })
	return fabs[0], fabs[1]
}

func twoMachineTopo() Topology {
	return Topology{Workers: 2, Machines: 2, MachineOfWorker: []int{0, 1}}
}

func TestTCPExchangeAcrossProcesses(t *testing.T) {
	f0, f1 := dialPair(t, twoMachineTopo())
	if !f0.Distributed() || f0.Local(1) || !f0.Local(0) || !f0.Local(2) {
		t.Fatal("tcp locality")
	}
	// Worker 0 lives on f0, worker 1 on f1: a genuine cross-socket pair.
	exchangeAll(t, f0.Conduit(0), f1.Conduit(1))
	s0, s1 := f0.Stats(), f1.Stats()
	if s0.SentBytes == 0 || s0.RecvBytes == 0 || s1.SentBytes == 0 || s1.RecvBytes == 0 {
		t.Errorf("wire stats not counted: %+v %+v", s0, s1)
	}
	if s0.SentBytes != s1.RecvBytes || s1.SentBytes != s0.RecvBytes {
		t.Errorf("stats asymmetric: %+v vs %+v", s0, s1)
	}
}

func TestTCPLocalPairsShortCircuit(t *testing.T) {
	topo := Topology{Workers: 4, Machines: 2, MachineOfWorker: []int{0, 0, 1, 1}}
	f0, _ := dialPair(t, topo)
	// Workers 0 and 1 are both on process 0: their exchange must not
	// touch the wire.
	before := f0.Stats()
	exchangeAll(t, f0.Conduit(0), f0.Conduit(1))
	after := f0.Stats()
	if after != before {
		t.Errorf("intra-process exchange hit the wire: %+v -> %+v", before, after)
	}
}

func TestTCPConcurrentTagsOnePair(t *testing.T) {
	// Two concurrent request/reply streams between the same endpoints
	// under different tags: the per-tag inbox queues must demultiplex.
	f0, f1 := dialPair(t, twoMachineTopo())
	a, b := f0.Conduit(0), f1.Conduit(1)
	var wg sync.WaitGroup
	for _, tag := range []string{"t1", "t2"} {
		wg.Add(2)
		go func(tag string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a.SendScalar(1, tag, float64(i))
			}
		}(tag)
		go func(tag string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if v := b.RecvScalar(0, tag); v != float64(i) {
					t.Errorf("tag %s msg %d = %v", tag, i, v)
					return
				}
			}
		}(tag)
	}
	wg.Wait()
}

func TestTCPRingCollectiveShapedTraffic(t *testing.T) {
	// The ring schedule's send-then-recv pattern with chunks far larger
	// than a socket buffer: both sides send 4 MB simultaneously, which
	// deadlocks unless readers drain independently of send order.
	f0, f1 := dialPair(t, twoMachineTopo())
	a, b := f0.Conduit(0), f1.Conduit(1)
	big := make([]float32, 1<<20)
	for i := range big {
		big[i] = float32(i % 97)
	}
	var wg sync.WaitGroup
	for _, c := range []Conduit{a, b} {
		wg.Add(1)
		go func(c Conduit, peer int) {
			defer wg.Done()
			c.SendF32(peer, "big", big)
			got := c.RecvF32(peer, "big")
			if len(got) != len(big) || got[12345] != big[12345] {
				t.Errorf("big chunk corrupted")
			}
			c.PutBuf(got)
		}(c, 1-c.Rank())
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("simultaneous large sends deadlocked")
	}
}

func TestTCPDialFailureReturnsErrorWithoutLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	// A port nothing listens on: grab one and close it immediately.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	// Process 1 dials process 0; nobody is there.
	_, err = DialTCP(context.Background(), TCPConfig{
		Topo: twoMachineTopo(), Process: 1,
		Addrs:       []string{dead, "127.0.0.1:0"},
		DialTimeout: 300 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "dialing peer") {
		t.Fatalf("err = %v", err)
	}
	waitGoroutines(t, base)
}

func TestTCPAcceptTimeoutReturnsErrorWithoutLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	// Process 0 waits for process 1, which never comes.
	_, err := DialTCP(context.Background(), TCPConfig{
		Topo: twoMachineTopo(), Process: 0,
		Addrs:       []string{"127.0.0.1:0", "127.0.0.1:0"},
		Listener:    mustListen(t),
		DialTimeout: 300 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v", err)
	}
	waitGoroutines(t, base)
}

// TestTCPDialObservesContextCancel: cancelling the rendezvous context
// aborts DialTCP well before DialTimeout, surfaces the context error
// through errors.Is, and leaks nothing.
func TestTCPDialObservesContextCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = DialTCP(ctx, TCPConfig{
		Topo: twoMachineTopo(), Process: 1,
		Addrs:       []string{dead, "127.0.0.1:0"},
		DialTimeout: 30 * time.Second,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("cancelled dial took %v", since)
	}
	// The accept side observes cancellation too.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	_, err = DialTCP(ctx2, TCPConfig{
		Topo: twoMachineTopo(), Process: 0,
		Addrs:       []string{"127.0.0.1:0", "127.0.0.1:0"},
		Listener:    mustListen(t),
		DialTimeout: 30 * time.Second,
	})
	if err == nil {
		t.Fatal("accept rendezvous ignored the context deadline")
	}
	waitGoroutines(t, base)
}

func mustListen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func TestTCPCloseIdempotentAndReleasesServing(t *testing.T) {
	base := runtime.NumGoroutine()
	f0, f1 := dialPair(t, twoMachineTopo())
	done := make(chan *PSMsg, 1)
	go func() { done <- f0.Conduit(2).RecvPS(1, "ps") }() // serving-loop shape
	time.Sleep(10 * time.Millisecond)
	f0.Close()
	f0.Close()
	if m := <-done; m != nil {
		t.Fatalf("closed RecvPS returned %+v", m)
	}
	// Peer's reader notices the dead connection and shuts its fabric
	// down too (fail-stop).
	f1.Close()
	waitGoroutines(t, base)
}

func TestTCPPeerDeathFailsStop(t *testing.T) {
	f0, f1 := dialPair(t, twoMachineTopo())
	f1.Close() // peer vanishes
	// f0's reader observes the broken connection and closes the fabric,
	// turning a blocked RecvPS into nil rather than a hang.
	done := make(chan *PSMsg, 1)
	go func() { done <- f0.Conduit(0).RecvPS(1, "ps") }()
	select {
	case m := <-done:
		if m != nil {
			t.Fatalf("RecvPS after peer death returned %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fabric did not fail stop after peer death")
	}
}
