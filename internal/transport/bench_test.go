package transport

import (
	"testing"

	"parallax/internal/tensor"
)

// BenchmarkCodecRoundTrip measures the wire codec on the three payload
// shapes the trainer ships every step: a fusion-bucket-sized dense
// chunk, an AllGatherv sparse block, and a batched PS push. Encode
// appends into a reused scratch buffer and decode draws float buffers
// from the pool, so steady state should allocate only the
// receiver-owned sparse/PS structures.
func BenchmarkCodecRoundTrip(b *testing.B) {
	b.Run("dense64k", func(b *testing.B) {
		b.ReportAllocs()
		data := make([]float32, 64<<10)
		for i := range data {
			data[i] = float32(i)
		}
		m := message{tag: "fuse/0/rs", kind: kindF32, f32: data}
		pool := newBufPool()
		var buf []byte
		b.SetBytes(int64(len(data) * 4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = appendMessage(buf[:0], 0, 1, m)
			_, _, got, err := decodeMessage(buf, pool)
			if err != nil {
				b.Fatal(err)
			}
			pool.put(got.f32)
		}
	})
	b.Run("sparse1k", func(b *testing.B) {
		b.ReportAllocs()
		rows := make([]int, 1024)
		for i := range rows {
			rows[i] = i * 3
		}
		sp := tensor.NewSparse(rows, tensor.NewDense(1024, 64), 4096)
		m := message{tag: "agv/embedding", kind: kindSparse, sparse: sp}
		pool := newBufPool()
		var buf []byte
		b.SetBytes(sp.Bytes() + int64(8*len(rows)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = appendMessage(buf[:0], 0, 1, m)
			if _, _, _, err := decodeMessage(buf, pool); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("psPush8", func(b *testing.B) {
		b.ReportAllocs()
		ps := &PSMsg{Op: PSPushDenseMany}
		var bytes int64
		for i := 0; i < 8; i++ {
			d := tensor.NewDense(256, 32)
			bytes += d.Bytes()
			ps.Names = append(ps.Names, "embedding")
			ps.Parts = append(ps.Parts, i)
			ps.Dense = append(ps.Dense, d)
		}
		m := message{tag: "ps", kind: kindPS, ps: ps}
		pool := newBufPool()
		var buf []byte
		b.SetBytes(bytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = appendMessage(buf[:0], 0, 1, m)
			if _, _, _, err := decodeMessage(buf, pool); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCodecCompressedRoundTrip measures the compressed wire
// encodings against the same payload shapes: an f16 fusion bucket, a
// top-k sparsified bucket at 10%, and a delta-indexed f16 sparse PS
// push. SetBytes reports the UNCOMPRESSED payload size, so the ns/op
// and MB/s columns compare directly against BenchmarkCodecRoundTrip —
// throughput here is "effective f32 bytes moved per second".
func BenchmarkCodecCompressedRoundTrip(b *testing.B) {
	b.Run("denseF16_64k", func(b *testing.B) {
		b.ReportAllocs()
		data := make([]float32, 64<<10)
		for i := range data {
			data[i] = float32(i)
		}
		tensor.QuantizeF16(data)
		m := message{tag: "fuse/0/rs", kind: kindF32, codec: CodecF16, f32: data}
		pool := newBufPool()
		var buf []byte
		b.SetBytes(int64(len(data) * 4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = appendMessage(buf[:0], 0, 1, m)
			_, _, got, err := decodeMessage(buf, pool)
			if err != nil {
				b.Fatal(err)
			}
			pool.put(got.f32)
		}
	})
	b.Run("topk10pct_64k", func(b *testing.B) {
		b.ReportAllocs()
		n := 64 << 10
		k := n / 10
		ch := SparseChunk{Len: n, Idx: make([]int32, k), Vals: make([]float32, k), Codec: CodecF16}
		for i := 0; i < k; i++ {
			ch.Idx[i] = int32(i * 10)
			ch.Vals[i] = float32(i)
		}
		tensor.QuantizeF16(ch.Vals)
		m := message{tag: "fuse/0/rs", kind: kindF32Sparse, topk: &ch}
		pool := newBufPool()
		var buf []byte
		b.SetBytes(int64(n * 4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = appendMessage(buf[:0], 0, 1, m)
			if _, _, _, err := decodeMessage(buf, pool); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("psSparseF16Delta", func(b *testing.B) {
		b.ReportAllocs()
		rows := make([]int, 1024)
		for i := range rows {
			rows[i] = i * 3
		}
		vals := tensor.NewDense(1024, 64)
		tensor.QuantizeF16(vals.Data())
		sp := tensor.NewSparse(rows, vals, 4096)
		ps := &PSMsg{
			Op: PSPushSparseMany, Names: []string{"embedding"}, Parts: []int{0},
			Sparse: []*tensor.Sparse{sp}, SparseCodec: CodecF16, DeltaIndex: true,
		}
		m := message{tag: "ps", kind: kindPS, ps: ps}
		pool := newBufPool()
		var buf []byte
		b.SetBytes(sp.Bytes() + int64(8*len(rows)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = appendMessage(buf[:0], 0, 1, m)
			if _, _, _, err := decodeMessage(buf, pool); err != nil {
				b.Fatal(err)
			}
		}
	})
}
