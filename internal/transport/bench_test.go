package transport

import (
	"testing"

	"parallax/internal/tensor"
)

// BenchmarkCodecRoundTrip measures the wire codec on the three payload
// shapes the trainer ships every step: a fusion-bucket-sized dense
// chunk, an AllGatherv sparse block, and a batched PS push. Encode
// appends into a reused scratch buffer and decode draws float buffers
// from the pool, so steady state should allocate only the
// receiver-owned sparse/PS structures.
func BenchmarkCodecRoundTrip(b *testing.B) {
	b.Run("dense64k", func(b *testing.B) {
		b.ReportAllocs()
		data := make([]float32, 64<<10)
		for i := range data {
			data[i] = float32(i)
		}
		m := message{tag: "fuse/0/rs", kind: kindF32, f32: data}
		pool := newBufPool()
		var buf []byte
		b.SetBytes(int64(len(data) * 4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = appendMessage(buf[:0], 0, 1, m)
			_, _, got, err := decodeMessage(buf, pool)
			if err != nil {
				b.Fatal(err)
			}
			pool.put(got.f32)
		}
	})
	b.Run("sparse1k", func(b *testing.B) {
		b.ReportAllocs()
		rows := make([]int, 1024)
		for i := range rows {
			rows[i] = i * 3
		}
		sp := tensor.NewSparse(rows, tensor.NewDense(1024, 64), 4096)
		m := message{tag: "agv/embedding", kind: kindSparse, sparse: sp}
		pool := newBufPool()
		var buf []byte
		b.SetBytes(sp.Bytes() + int64(8*len(rows)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = appendMessage(buf[:0], 0, 1, m)
			if _, _, _, err := decodeMessage(buf, pool); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("psPush8", func(b *testing.B) {
		b.ReportAllocs()
		ps := &PSMsg{Op: PSPushDenseMany}
		var bytes int64
		for i := 0; i < 8; i++ {
			d := tensor.NewDense(256, 32)
			bytes += d.Bytes()
			ps.Names = append(ps.Names, "embedding")
			ps.Parts = append(ps.Parts, i)
			ps.Dense = append(ps.Dense, d)
		}
		m := message{tag: "ps", kind: kindPS, ps: ps}
		pool := newBufPool()
		var buf []byte
		b.SetBytes(bytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = appendMessage(buf[:0], 0, 1, m)
			if _, _, _, err := decodeMessage(buf, pool); err != nil {
				b.Fatal(err)
			}
		}
	})
}
