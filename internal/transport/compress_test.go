package transport

import (
	"context"
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"parallax/internal/errs"
	"parallax/internal/tensor"
)

// onGrid returns f16-grid values (also on the bf16 grid for the chosen
// constants), as the data plane would produce before a compressed send.
func onGrid() []float32 {
	return []float32{0, 1.5, -2.25, 0.5, float32(math.Inf(1)), -96}
}

func topkChunk() SparseChunk {
	return SparseChunk{
		Len:   100,
		Idx:   []int32{3, 7, 42, 99},
		Vals:  []float32{1.5, -0.25, 8, -96},
		Codec: CodecF16,
	}
}

// compressedSeedFrames returns well-formed encoded frames of every
// compressed kind: half-precision dense chunks, a top-k sparsified
// chunk, and compressed PS pushes (dense codec, sparse codec + delta
// indices).
func compressedSeedFrames() [][]byte {
	ascending := tensor.NewSparse([]int{1, 4, 9},
		tensor.FromSlice([]float32{1, -2, 3, 4, 0.5, 6}, 3, 2), 16)
	unsorted := tensor.NewSparse([]int{9, 1, 4},
		tensor.FromSlice([]float32{1, -2, 3, 4, 0.5, 6}, 3, 2), 16)
	frames := []message{
		{tag: "fuse/0/rs", kind: kindF32, codec: CodecF16, f32: onGrid()},
		{tag: "fuse/0/ag", kind: kindF32, codec: CodecBF16, f32: onGrid()},
		{tag: "fuse/1/rs", kind: kindF32Sparse, topk: &SparseChunk{
			Len: 100, Idx: []int32{3, 7, 42, 99},
			Vals: []float32{1.5, -0.25, 8, -96}, Codec: CodecF16}},
		{tag: "ps", kind: kindPS, ps: &PSMsg{
			Op: PSPushDenseMany, Names: []string{"w"}, Parts: []int{1},
			Dense:      []*tensor.Dense{tensor.FromSlice(onGrid(), 6)},
			DenseCodec: CodecF16}},
		{tag: "ps", kind: kindPS, ps: &PSMsg{
			Op: PSPushSparseMany, Names: []string{"emb", "emb"}, Parts: []int{0, 1},
			Sparse:      []*tensor.Sparse{ascending, unsorted},
			SparseCodec: CodecBF16, DeltaIndex: true}},
		{tag: "ps", kind: kindPS, ps: &PSMsg{
			Op: PSPushSparseMany, Names: []string{"emb"}, Parts: []int{2},
			Sparse:     []*tensor.Sparse{ascending},
			DeltaIndex: true}},
	}
	var out [][]byte
	for _, m := range frames {
		out = append(out, appendMessage(nil, 1, 2, m))
	}
	return out
}

// FuzzCompressedDecode drives the decoder over the compressed frame
// kinds: malformed input — truncations, oversized declarations,
// non-monotone delta indices — must error, never panic; valid frames
// must round-trip canonically (same bytes after decode + re-encode).
func FuzzCompressedDecode(f *testing.F) {
	for _, b := range compressedSeedFrames() {
		f.Add(b)
		f.Add(b[:len(b)/2])
	}
	// A kindF32Sparse body with a zero delta (non-monotone).
	bad := appendMessage(nil, 0, 1, message{tag: "t", kind: kindF32Sparse, topk: &SparseChunk{
		Len: 10, Idx: []int32{2, 5}, Vals: []float32{1, 2}, Codec: CodecF32}})
	bad[len(bad)-9] = 0 // second delta varint -> 0
	f.Add(bad)
	f.Fuzz(func(t *testing.T, b []byte) {
		pool := newBufPool()
		src, dst, m, err := decodeMessage(b, pool)
		if err != nil {
			return
		}
		re := appendMessage(nil, src, dst, m)
		src2, dst2, m2, err := decodeMessage(re, pool)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if src2 != src || dst2 != dst || !sameMessage(m, m2) {
			t.Fatalf("round trip changed frame:\n%+v\nvs\n%+v", m, m2)
		}
	})
}

// TestCompressedRejectsCorruption pins the decoder's rejection contract
// on the compressed kinds: every truncation errors, and the specific
// corruptions the delta encoding admits (zero deltas, out-of-range
// indices, more survivors than the chunk is long) are errors too.
func TestCompressedRejectsCorruption(t *testing.T) {
	pool := newBufPool()
	for _, b := range compressedSeedFrames() {
		if _, _, _, err := decodeMessage(b, pool); err != nil {
			t.Fatalf("seed frame did not decode: %v", err)
		}
		for cut := 0; cut < len(b); cut++ {
			if _, _, _, err := decodeMessage(b[:cut], pool); err == nil {
				t.Fatalf("truncated frame (%d of %d bytes) decoded", cut, len(b))
			}
		}
		if _, _, _, err := decodeMessage(append(append([]byte(nil), b...), 0), pool); err == nil {
			t.Fatal("frame with trailing byte decoded")
		}
	}

	check := func(name string, body []byte) {
		t.Helper()
		if _, _, _, err := decodeMessage(body, pool); err == nil {
			t.Fatalf("%s decoded", name)
		}
	}
	header := []byte{0, 0, 1, 0, byte(kindF32Sparse), 1, 't'}
	// nnz exceeding the dense length.
	check("oversized survivor count", append(append([]byte(nil), header...),
		byte(CodecF32), 2, 0, 0, 0 /*len*/, 3, 0, 0, 0 /*nnz*/, 0, 1, 1, 0, 0, 0, 0))
	// Zero delta between survivors (non-monotone index).
	check("zero delta", append(append([]byte(nil), header...),
		byte(CodecF32), 9, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0))
	// First index beyond the dense length.
	check("out-of-range index", append(append([]byte(nil), header...),
		byte(CodecF32), 4, 0, 0, 0, 1, 0, 0, 0, 9, 0, 0, 0, 0))
	// Non-minimal varint (0x80 0x00 encodes 0 in two bytes).
	check("non-minimal varint", append(append([]byte(nil), header...),
		byte(CodecF32), 9, 0, 0, 0, 1, 0, 0, 0, 0x80, 0x00, 0, 0, 0, 0))
	// Unknown payload codec.
	check("unknown codec", append(append([]byte(nil), header...),
		99, 4, 0, 0, 0, 0, 0, 0, 0))
	// kindPSC with all-zero hints (must travel as classic kindPS).
	psc := []byte{0, 0, 1, 0, byte(kindPSC), 1, 't', 0, 0, 0}
	check("uncompressed PSC frame", psc)
	// kindF16 declaring 2^30 values with an empty body.
	check("oversized f16 declaration",
		[]byte{0, 0, 1, 0, byte(kindF16), 1, 't', 0, 0, 0, 0x40})
}

// TestCompressedFrameSizes pins the wire wins the codecs exist for:
// half-precision frames carry 2 bytes/value and the top-k frame is far
// smaller than the dense chunk it replaces.
func TestCompressedFrameSizes(t *testing.T) {
	data := make([]float32, 1000)
	for i := range data {
		data[i] = float32(i)
	}
	tensor.QuantizeF16(data)
	raw := appendMessage(nil, 0, 1, message{tag: "x", kind: kindF32, f32: data})
	half := appendMessage(nil, 0, 1, message{tag: "x", kind: kindF32, codec: CodecF16, f32: data})
	if want := len(raw) - 2*len(data); len(half) != want {
		t.Fatalf("f16 frame is %d bytes, want %d", len(half), want)
	}
	ch := topkChunk()
	sp := appendMessage(nil, 0, 1, message{tag: "x", kind: kindF32Sparse, topk: &ch})
	m := message{tag: "x", kind: kindF32Sparse, topk: &ch}
	if est := rawFrameBytes(m); est != 2+2+1+1+1+4+4*ch.Len {
		t.Fatalf("rawFrameBytes = %d", est)
	}
	if len(sp)*5 > rawFrameBytes(m) {
		t.Fatalf("top-k frame %d bytes vs %d dense: less than 5x", len(sp), rawFrameBytes(m))
	}
}

func TestPolicyFingerprintAndValidate(t *testing.T) {
	if fp := (Policy{}).Fingerprint(); fp != "none" {
		t.Fatalf("zero policy fingerprint %q", fp)
	}
	p := Policy{Dense: CodecF16, DenseTopK: 0.1, PSDense: CodecF16, PSSparse: CodecBF16, DeltaIndex: true}
	if fp := p.Fingerprint(); fp != "dense=f16,topk=0.1,psdense=f16,pssparse=bf16,delta=true" {
		t.Fatalf("fingerprint %q", fp)
	}
	if p.Fingerprint() == (Policy{Dense: CodecBF16, DenseTopK: 0.1, PSDense: CodecF16, PSSparse: CodecBF16, DeltaIndex: true}).Fingerprint() {
		t.Fatal("fingerprint ignores the dense codec")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Policy{DenseTopK: 1.5}).Validate(); err == nil {
		t.Fatal("DenseTopK 1.5 validated")
	}
	if err := (Policy{Dense: Codec(9)}).Validate(); err == nil {
		t.Fatal("unknown codec validated")
	}
	if (Policy{}).Enabled() {
		t.Fatal("zero policy enabled")
	}
	if !(Policy{DeltaIndex: true}).Enabled() {
		t.Fatal("delta-only policy not enabled")
	}
}

// exchangeCompressed sends one half-precision chunk and one top-k chunk
// from a to b (and back), checking bit-exact delivery of on-grid data.
func exchangeCompressed(t *testing.T, a, b Conduit) {
	t.Helper()
	data := onGrid()
	ch := topkChunk()
	var wg sync.WaitGroup
	wg.Add(2)
	for _, pair := range [][2]Conduit{{a, b}, {b, a}} {
		go func(src, dst Conduit) {
			defer wg.Done()
			src.SendF32C(dst.Rank(), "half", data, CodecF16)
			src.SendF32Sparse(dst.Rank(), "topk", ch)
		}(pair[0], pair[1])
	}
	for _, pair := range [][2]Conduit{{a, b}, {b, a}} {
		src, dst := pair[0], pair[1]
		got := dst.RecvF32(src.Rank(), "half")
		if !sameF32s(got, data) {
			t.Fatalf("half-precision chunk changed: %v vs %v", got, data)
		}
		dst.PutBuf(got)
		gotCh := dst.RecvF32Sparse(src.Rank(), "topk")
		if gotCh.Len != ch.Len || gotCh.Codec != ch.Codec ||
			len(gotCh.Idx) != len(ch.Idx) || !sameF32s(gotCh.Vals, ch.Vals) {
			t.Fatalf("top-k chunk changed: %+v vs %+v", gotCh, ch)
		}
		for i := range ch.Idx {
			if gotCh.Idx[i] != ch.Idx[i] {
				t.Fatalf("top-k index %d changed", i)
			}
		}
	}
	wg.Wait()
}

func TestCompressedExchangeInproc(t *testing.T) {
	f := NewInproc(Topology{Workers: 2, Machines: 1, MachineOfWorker: []int{0, 0}})
	defer f.Close()
	exchangeCompressed(t, f.Conduit(0), f.Conduit(1))
}

func TestCompressedExchangeTCPAndAccounting(t *testing.T) {
	f0, f1 := dialPair(t, twoMachineTopo())
	exchangeCompressed(t, f0.Conduit(0), f1.Conduit(1))
	s := f0.Stats()
	if s.SentBytesCompressed <= 0 || s.SentBytesRaw <= s.SentBytesCompressed {
		t.Fatalf("compression accounting: raw %d, compressed %d", s.SentBytesRaw, s.SentBytesCompressed)
	}
	// The classic counters still cover everything that hit the wire.
	if s.SentBytes < s.SentBytesCompressed {
		t.Fatalf("SentBytes %d < compressed %d", s.SentBytes, s.SentBytesCompressed)
	}
	// Uncompressed sends leave the compression counters untouched.
	before := f0.Stats()
	f0.Conduit(0).SendF32(1, "plain", onGrid())
	got := f1.Conduit(1).RecvF32(0, "plain")
	f1.Conduit(1).PutBuf(got)
	after := f0.Stats()
	if after.SentBytesRaw != before.SentBytesRaw || after.SentBytesCompressed != before.SentBytesCompressed {
		t.Fatal("uncompressed frame moved the compression counters")
	}
	if after.SentBytes == before.SentBytes {
		t.Fatal("uncompressed frame not counted at all")
	}
}

// TestTCPCompressionPolicyMismatch: two agents configured with different
// wire-compression policies must refuse the rendezvous on both sides
// with ErrCompressionMismatch — a deployment error caught before any
// training state diverges.
func TestTCPCompressionPolicyMismatch(t *testing.T) {
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), "127.0.0.1:0"}
	policies := []Policy{{Dense: CodecF16}, {}}
	errsOut := make([]error, 2)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cfg := TCPConfig{
				Topo: twoMachineTopo(), Process: p, Addrs: addrs,
				DialTimeout: 5 * time.Second, Policy: policies[p],
			}
			if p == 0 {
				cfg.Listener = ln0
			}
			var f *TCP
			f, errsOut[p] = DialTCP(context.Background(), cfg)
			if f != nil {
				f.Close()
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errsOut {
		if !errors.Is(err, errs.ErrCompressionMismatch) {
			t.Fatalf("process %d: err = %v, want ErrCompressionMismatch", p, err)
		}
	}
}

// TestTCPMatchingPolicyConnects: agents agreeing on a non-trivial
// policy rendezvous normally and exchange compressed frames.
func TestTCPMatchingPolicyConnects(t *testing.T) {
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), "127.0.0.1:0"}
	pol := Policy{Dense: CodecF16, DenseTopK: 0.25, PSDense: CodecF16, PSSparse: CodecF16, DeltaIndex: true}
	fabs := make([]*TCP, 2)
	errsOut := make([]error, 2)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cfg := TCPConfig{
				Topo: twoMachineTopo(), Process: p, Addrs: addrs,
				DialTimeout: 10 * time.Second, Policy: pol,
			}
			if p == 0 {
				cfg.Listener = ln0
			}
			fabs[p], errsOut[p] = DialTCP(context.Background(), cfg)
		}(p)
	}
	wg.Wait()
	for p, err := range errsOut {
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}
	defer fabs[0].Close()
	defer fabs[1].Close()
	exchangeCompressed(t, fabs[0].Conduit(0), fabs[1].Conduit(1))
}
