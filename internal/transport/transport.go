// Package transport is the wire layer of the functional data plane: it
// abstracts the point-to-point tagged message exchange that the
// collective algorithms (internal/collective) and the parameter-server
// runtime (internal/psrt) are built on, so the same training schedule can
// run over an in-memory channel fabric inside one process or over
// persistent TCP connections between agent processes.
//
// # Endpoints
//
// A training cluster exposes one transport endpoint per communicating
// party: worker (GPU) ranks 0..W-1 followed by parameter-server ranks
// W..W+M-1, one server per machine (Topology). Every endpoint obtains a
// Conduit from the process's Fabric; a message is addressed by
// (destination endpoint, rendezvous tag). Tags are the build-time strings
// internal/collective and internal/arrt precompute ("fuse/0/rs",
// "agv/embedding", ...); the fabric guarantees FIFO delivery per
// (source, destination, tag).
//
// # Fabrics
//
// Two fabrics implement the same Conduit interface:
//
//   - Inproc: the channel fabric. One buffered Go channel per directed
//     endpoint pair, float chunks travel as pooled buffers, sparse
//     tensors and PS batches travel as pointers. Zero serialization, the
//     single-process fast path.
//   - TCP: persistent length-prefixed framed connections, one
//     dialer/listener pair per peer process, reused across steps.
//     Endpoint pairs colocated in one process short-circuit through the
//     same channel fabric; only cross-process pairs touch a socket.
//
// # Buffer ownership
//
//   - SendF32 borrows data for the duration of the call: the inproc path
//     copies it into a pooled buffer, the TCP path writes it to the wire
//     before returning. Either way the caller may reuse (or keep
//     mutating) the slice as soon as the call returns, which is what lets
//     the trainer serialize straight from fusion-bucket storage and
//     SliceRows views.
//   - RecvF32 returns a pooled buffer; the consumer returns it with
//     PutBuf once folded in.
//   - SendSparse hands the tensor to the fabric read-only: the inproc
//     path shares the pointer (the receiver must not mutate it), the TCP
//     path serializes it. Receivers of RecvSparse own fresh tensors on
//     the TCP path and shared read-only tensors on the inproc path —
//     matching the existing collective AllGatherv contract.
//   - SendPS transfers the message to the fabric; the caller must not
//     touch it afterwards. PS exchanges are strict request/reply (the
//     client blocks on RecvPS before reusing any borrowed dense views
//     inside the request), which is what makes borrowed views safe on
//     the inproc path.
package transport

import (
	"fmt"
	"sync"

	"parallax/internal/tensor"
)

// Topology describes the endpoint space of a training cluster: worker
// endpoints 0..Workers-1, then one parameter-server endpoint per machine.
type Topology struct {
	// Workers is the number of worker (GPU) ranks.
	Workers int
	// Machines is the number of machines; machine m's server is endpoint
	// Workers+m. Zero means a worker-only world (collective tests).
	Machines int
	// MachineOfWorker[w] is the machine hosting worker w. May be nil for
	// single-process fabrics; required by TCP fabrics.
	MachineOfWorker []int
}

// WorkersOnly is the topology of a pure collective world: n worker
// endpoints, no servers.
func WorkersOnly(n int) Topology { return Topology{Workers: n} }

// Endpoints returns the total endpoint count.
func (t Topology) Endpoints() int { return t.Workers + t.Machines }

// ServerEndpoint returns machine m's server endpoint rank.
func (t Topology) ServerEndpoint(m int) int { return t.Workers + m }

// Processes returns the number of agent processes the topology spans
// (one per machine; a worker-only world is one process).
func (t Topology) Processes() int {
	if t.Machines == 0 {
		return 1
	}
	return t.Machines
}

// ProcessOf returns the process (machine index) hosting an endpoint:
// workers live on their machine's agent, server m on agent m.
func (t Topology) ProcessOf(rank int) int {
	if rank < t.Workers {
		if t.MachineOfWorker == nil {
			return 0
		}
		return t.MachineOfWorker[rank]
	}
	return rank - t.Workers
}

// Validate checks internal consistency.
func (t Topology) Validate() error {
	if t.Workers <= 0 {
		return fmt.Errorf("transport: topology needs at least one worker, got %d", t.Workers)
	}
	if t.Machines < 0 {
		return fmt.Errorf("transport: negative machine count %d", t.Machines)
	}
	if t.MachineOfWorker != nil {
		if len(t.MachineOfWorker) != t.Workers {
			return fmt.Errorf("transport: MachineOfWorker has %d entries for %d workers",
				len(t.MachineOfWorker), t.Workers)
		}
		for w, m := range t.MachineOfWorker {
			if m < 0 || m >= t.Processes() {
				return fmt.Errorf("transport: worker %d on machine %d of %d", w, m, t.Processes())
			}
		}
	}
	return nil
}

// Stats counts the bytes a fabric moved over real wires. The inproc
// fabric never touches a wire and always reports zeros; the TCP fabric
// counts framed socket bytes in both directions (intra-process
// short-circuited pairs excluded).
type Stats struct {
	SentBytes int64
	RecvBytes int64
	// SentBytesRaw and SentBytesCompressed cover only the frames that
	// travelled under a compressed encoding: Raw is the bytes the same
	// frames would occupy in the exact f32 encoding (a kindF32Sparse
	// frame counts as the dense chunk it replaces), Compressed their
	// actual on-wire size. Both stay zero under CompressionNone; their
	// ratio is the wire compression factor.
	SentBytesRaw        int64
	SentBytesCompressed int64
}

// Conduit is one endpoint's handle on the fabric: point-to-point tagged
// message exchange with the other endpoints of the topology. All methods
// are safe for use by the multiple goroutines a trainer endpoint runs
// (comm goroutine, pullers, worker), provided no two goroutines exchange
// on the same (peer, tag) pair concurrently — the per-pair FIFO is the
// ordering guarantee the collective schedule relies on.
type Conduit interface {
	// Rank returns this endpoint's rank in the topology.
	Rank() int

	// SendF32 ships a float32 chunk to dst under tag; data is borrowed
	// for the duration of the call only.
	SendF32(dst int, tag string, data []float32)
	// RecvF32 blocks for a float32 chunk from src under tag. The returned
	// buffer is pooled: pass it to PutBuf once consumed.
	RecvF32(src int, tag string) []float32
	// GetBuf returns a length-n pooled float buffer (contents
	// unspecified); PutBuf recycles buffers from GetBuf or RecvF32.
	GetBuf(n int) []float32
	PutBuf(b []float32)

	// SendF32C is SendF32 with a wire payload codec: cross-process links
	// re-encode the chunk at 2 bytes/value for CodecF16/CodecBF16. The
	// values must already lie on the codec's grid (the data plane
	// quantizes before sending), which keeps the re-encoding lossless
	// and the schedule bit-identical across fabrics. CodecF32
	// degenerates to SendF32; RecvF32 receives both.
	SendF32C(dst int, tag string, data []float32, codec Codec)

	// SendF32Sparse ships a top-k sparsified dense chunk (a
	// kindF32Sparse frame on the wire: delta-varint indices plus values
	// under the chunk's codec). The chunk's slices are borrowed for the
	// duration of the call; RecvF32Sparse returns receiver-owned fresh
	// slices.
	SendF32Sparse(dst int, tag string, ch SparseChunk)
	RecvF32Sparse(src int, tag string) SparseChunk

	// SendSparse ships a sparse tensor read-only; see the package comment
	// for ownership.
	SendSparse(dst int, tag string, s *tensor.Sparse)
	RecvSparse(src int, tag string) *tensor.Sparse

	// SendScalar / RecvScalar exchange one float64 (loss aggregation,
	// barriers).
	SendScalar(dst int, tag string, v float64)
	RecvScalar(src int, tag string) float64

	// SendPS ships a parameter-server request or reply; the message
	// belongs to the fabric after the call. RecvPS returns nil once the
	// fabric is closed, which is how long-running serving loops learn to
	// exit.
	SendPS(dst int, tag string, m *PSMsg)
	RecvPS(src int, tag string) *PSMsg
}

// Fabric owns the transport state of one process: the conduits of its
// local endpoints and the pipes/connections behind them.
type Fabric interface {
	Topology() Topology
	// Local reports whether an endpoint is hosted by this process.
	Local(rank int) bool
	// Conduit returns the handle for a local endpoint.
	Conduit(rank int) Conduit
	// Distributed reports whether any endpoint lives in another process.
	Distributed() bool
	// Stats returns cumulative wire-byte counters.
	Stats() Stats
	// Err returns the rank-attributed failure that tore the fabric down
	// (wrapping errs.ErrPeerFailed), or nil while the fabric is healthy
	// or after an orderly Close. The in-process fabric never fails.
	Err() error
	// Done is closed when the fabric shuts down — by Close or by a
	// failure — so watchers (server-abort, chaos) can react without
	// polling.
	Done() <-chan struct{}
	// Close tears the fabric down; blocked RecvPS calls return nil.
	// Close is idempotent.
	Close() error
}

// PSOp discriminates parameter-server wire operations.
type PSOp uint8

// Parameter-server operations: requests carry the batched shapes of
// psrt's PullManyInto / PushDenseMany / PushSparseMany plus the
// chief-clipping calls and the resharding snapshot read; PSReply answers
// all of them. PSReply must stay the highest value — the decoder rejects
// ops above it.
const (
	PSPullMany PSOp = iota + 1
	PSPushDenseMany
	PSPushSparseMany
	PSNormSquared
	PSApplyUpdate
	// PSSnapshot reads one partition's value plus its optimizer slot
	// state (live resharding's gather phase): request Names[0]/Parts[0]
	// with Version as the minimum applied-update count; the reply's
	// Dense[0] is the value, Dense[1:] the slot tensors.
	PSSnapshot
	PSReply
)

// PSMsg is one parameter-server request or reply. Names/Parts address
// the variable partitions of a batch; Dense and Sparse carry per-item
// payloads (Dense entries are flattened to rank-1 on the wire — both
// sides know the real partition shapes). A reply carries Err (empty on
// success), Scalar for norm reads, and Dense for pull results.
type PSMsg struct {
	Op      PSOp
	Version int64   // minVersion (pull) or aggregation seq (norm)
	Scale   float32 // ApplyUpdate scale
	Scalar  float64 // norm reply
	Err     string  // reply error, "" on success
	Names   []string
	Parts   []int
	Dense   []*tensor.Dense
	Sparse  []*tensor.Sparse

	// Wire-encoding hints, not semantic payload: DenseCodec/SparseCodec
	// re-encode the Dense and Sparse values (which must already lie on
	// the codec grid) at 2 bytes/value on cross-process links, and
	// DeltaIndex delta-varint encodes ascending sparse row indices. All
	// zero (the default) keeps the classic kindPS frame byte-identical.
	DenseCodec  Codec
	SparseCodec Codec
	DeltaIndex  bool
}

// kind discriminates fabric datagrams.
type kind uint8

const (
	kindF32 kind = iota + 1
	kindSparse
	kindScalar
	kindPS
	// kindF16/kindBF16 are kindF32 with a half-precision payload; they
	// decode back into f32 messages (codec recorded for canonical
	// re-encoding).
	kindF16
	kindBF16
	// kindF32Sparse is a top-k sparsified dense chunk: delta-varint
	// indices plus surviving values.
	kindF32Sparse
	// kindPSC is kindPS with compressed payload encodings (leading
	// codec/flag bytes select them).
	kindPSC
)

// message is one fabric datagram.
type message struct {
	tag    string
	kind   kind
	codec  Codec // payload codec for kindF32 frames on the wire
	f32    []float32
	sparse *tensor.Sparse
	scalar float64
	ps     *PSMsg
	topk   *SparseChunk
}

// bufPool recycles float chunk buffers by exact length, the same
// discipline the collective world pool used: a persistent training loop
// reuses the same handful of buffers every step.
type bufPool struct {
	mu   sync.Mutex
	bufs map[int][][]float32
}

func newBufPool() *bufPool { return &bufPool{bufs: make(map[int][][]float32)} }

func (p *bufPool) get(n int) []float32 {
	p.mu.Lock()
	if l := p.bufs[n]; len(l) > 0 {
		b := l[len(l)-1]
		l[len(l)-1] = nil
		p.bufs[n] = l[:len(l)-1]
		p.mu.Unlock()
		return b
	}
	p.mu.Unlock()
	return make([]float32, n)
}

func (p *bufPool) put(b []float32) {
	if len(b) == 0 {
		return
	}
	p.mu.Lock()
	p.bufs[len(b)] = append(p.bufs[len(b)], b)
	p.mu.Unlock()
}
