package transport

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"parallax/internal/tensor"
)

func TestTopology(t *testing.T) {
	topo := Topology{Workers: 4, Machines: 2, MachineOfWorker: []int{0, 0, 1, 1}}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.Endpoints() != 6 || topo.ServerEndpoint(1) != 5 || topo.Processes() != 2 {
		t.Fatalf("layout: endpoints=%d server1=%d procs=%d", topo.Endpoints(), topo.ServerEndpoint(1), topo.Processes())
	}
	for rank, want := range []int{0, 0, 1, 1, 0, 1} {
		if got := topo.ProcessOf(rank); got != want {
			t.Errorf("ProcessOf(%d) = %d, want %d", rank, got, want)
		}
	}
	if err := (Topology{Workers: 0}).Validate(); err == nil {
		t.Error("zero workers validated")
	}
	if err := (Topology{Workers: 2, Machines: 2, MachineOfWorker: []int{0}}).Validate(); err == nil {
		t.Error("short MachineOfWorker validated")
	}
	if err := (Topology{Workers: 2, Machines: 2, MachineOfWorker: []int{0, 5}}).Validate(); err == nil {
		t.Error("out-of-range machine validated")
	}
}

// exchangeAll drives every message kind across a pair of conduits and
// verifies payloads; shared by the inproc and TCP fabric tests so both
// implementations pin the same contract.
func exchangeAll(t *testing.T, a, b Conduit) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		data := []float32{1.5, -2.25, float32(math.Pi)}
		a.SendF32(b.Rank(), "f32", data)
		a.SendScalar(b.Rank(), "sc", 42.125)
		sp := tensor.NewSparse([]int{3, 1, 3}, tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2), 7)
		a.SendSparse(b.Rank(), "sp", sp)
		a.SendPS(b.Rank(), "ps", &PSMsg{
			Op: PSPushDenseMany, Version: 9, Scale: 0.5,
			Names: []string{"v"}, Parts: []int{2},
			Dense: []*tensor.Dense{tensor.FromSlice([]float32{7, 8}, 2)},
		})
		// Reply flows the other way on the same tag.
		if rep := a.RecvPS(b.Rank(), "ps"); rep == nil || rep.Err != "boom" {
			t.Errorf("reply = %+v", rep)
		}
	}()

	f := b.RecvF32(a.Rank(), "f32")
	if len(f) != 3 || f[0] != 1.5 || f[1] != -2.25 {
		t.Fatalf("f32 payload %v", f)
	}
	b.PutBuf(f)
	if v := b.RecvScalar(a.Rank(), "sc"); v != 42.125 {
		t.Fatalf("scalar %v", v)
	}
	sp := b.RecvSparse(a.Rank(), "sp")
	if sp.Dim0 != 7 || len(sp.Rows) != 3 || sp.Rows[2] != 3 || sp.Values.At(1, 1) != 4 {
		t.Fatalf("sparse payload %+v", sp)
	}
	req := b.RecvPS(a.Rank(), "ps")
	if req == nil || req.Op != PSPushDenseMany || req.Version != 9 || req.Scale != 0.5 {
		t.Fatalf("ps req %+v", req)
	}
	if len(req.Dense) != 1 || req.Dense[0].Data()[1] != 8 || req.Names[0] != "v" || req.Parts[0] != 2 {
		t.Fatalf("ps req payload %+v", req)
	}
	b.SendPS(a.Rank(), "ps", &PSMsg{Op: PSReply, Err: "boom"})
	wg.Wait()
}

func TestInprocExchange(t *testing.T) {
	f := NewInproc(WorkersOnly(2))
	defer f.Close()
	if f.Distributed() || !f.Local(1) {
		t.Fatal("inproc locality")
	}
	exchangeAll(t, f.Conduit(0), f.Conduit(1))
	if s := f.Stats(); s.SentBytes != 0 || s.RecvBytes != 0 {
		t.Errorf("inproc wire stats %+v, want zeros", s)
	}
}

func TestInprocSendBorrowsData(t *testing.T) {
	f := NewInproc(WorkersOnly(2))
	defer f.Close()
	a, b := f.Conduit(0), f.Conduit(1)
	data := []float32{1, 2, 3}
	a.SendF32(1, "t", data)
	data[0] = 99 // caller may reuse immediately; the fabric copied
	got := b.RecvF32(0, "t")
	if got[0] != 1 {
		t.Fatalf("send aliased caller buffer: %v", got)
	}
	b.PutBuf(got)
}

func TestInprocTagMismatchPanics(t *testing.T) {
	f := NewInproc(WorkersOnly(2))
	defer f.Close()
	f.Conduit(0).SendScalar(1, "a", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on tag mismatch")
		}
	}()
	f.Conduit(1).RecvScalar(0, "b")
}

func TestInprocCloseReleasesRecvPS(t *testing.T) {
	f := NewInproc(WorkersOnly(2))
	done := make(chan *PSMsg, 1)
	go func() { done <- f.Conduit(0).RecvPS(1, "ps") }()
	time.Sleep(10 * time.Millisecond)
	f.Close()
	f.Close() // idempotent
	select {
	case m := <-done:
		if m != nil {
			t.Fatalf("closed RecvPS returned %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvPS did not unblock on Close")
	}
}

// waitGoroutines polls until the goroutine count settles back to at most
// base+slack, failing the test otherwise.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before", n, base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
