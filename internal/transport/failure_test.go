package transport

// Tests for the failure model (DESIGN.md §12): rank-attributed peer
// failures, heartbeat-based detection of silent peers, the peer-down
// broadcast that keeps every survivor's attribution consistent, and the
// epoch handshake that fences stale agents out of a recovered cluster.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"parallax/internal/errs"
)

// dialN builds an n-process fabric on loopback inside one test process,
// with per-process config tweaks.
func dialN(t *testing.T, n int, topo Topology, mutate func(p int, cfg *TCPConfig)) ([]*TCP, []error) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for p := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[p], addrs[p] = ln, ln.Addr().String()
	}
	fabs := make([]*TCP, n)
	errsOut := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cfg := TCPConfig{Topo: topo, Process: p, Addrs: addrs, Listener: lns[p],
				DialTimeout: 10 * time.Second}
			if mutate != nil {
				mutate(p, &cfg)
			}
			fabs[p], errsOut[p] = DialTCP(context.Background(), cfg)
		}(p)
	}
	wg.Wait()
	t.Cleanup(func() {
		for _, f := range fabs {
			if f != nil {
				f.Close()
			}
		}
	})
	return fabs, errsOut
}

func mustDialN(t *testing.T, n int, topo Topology, mutate func(p int, cfg *TCPConfig)) []*TCP {
	t.Helper()
	fabs, es := dialN(t, n, topo, mutate)
	for p, err := range es {
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}
	return fabs
}

func waitDone(t *testing.T, f *TCP, what string) {
	t.Helper()
	select {
	case <-f.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: fabric did not observe the failure", what)
	}
}

// An abrupt peer death (no announcement, simulating a crash) must
// surface on the survivor as a typed, rank-attributed failure, and
// blocked receives must fail stop rather than hang.
func TestTCPAbruptPeerDeathAttributed(t *testing.T) {
	base := runtime.NumGoroutine()
	fabs := mustDialN(t, 2, twoMachineTopo(), nil)
	done := make(chan *PSMsg, 1)
	go func() { done <- fabs[0].Conduit(2).RecvPS(1, "ps") }()
	time.Sleep(10 * time.Millisecond)

	fabs[1].Fail(1, fmt.Errorf("injected crash"))
	waitDone(t, fabs[0], "survivor")
	if m := <-done; m != nil {
		t.Fatalf("RecvPS after peer death returned %+v", m)
	}
	err := fabs[0].Err()
	if !errors.Is(err, errs.ErrPeerFailed) {
		t.Fatalf("survivor error %v, want ErrPeerFailed", err)
	}
	var pf *errs.PeerFailure
	if !errors.As(err, &pf) || pf.Rank != 1 {
		t.Fatalf("survivor attributed %v, want rank 1", err)
	}
	fabs[0].Close()
	fabs[1].Close()
	waitGoroutines(t, base)
}

// A peer that stops sending frames and heartbeats (process wedged, NIC
// dead) must be detected within the heartbeat timeout and attributed.
func TestTCPHeartbeatTimeoutAttributed(t *testing.T) {
	base := runtime.NumGoroutine()
	fabs := mustDialN(t, 2, twoMachineTopo(), func(p int, cfg *TCPConfig) {
		if p == 0 {
			cfg.HeartbeatInterval = 20 * time.Millisecond
			cfg.HeartbeatTimeout = 150 * time.Millisecond
		} else {
			cfg.HeartbeatInterval = -1 // process 1 goes silent
		}
	})
	start := time.Now()
	waitDone(t, fabs[0], "heartbeat watcher")
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("detection took %v, want within a few heartbeat timeouts", d)
	}
	err := fabs[0].Err()
	var pf *errs.PeerFailure
	if !errors.As(err, &pf) || pf.Rank != 1 {
		t.Fatalf("attributed %v, want rank 1", err)
	}
	if !strings.Contains(err.Error(), "no frames or heartbeats") {
		t.Fatalf("error %v does not describe the silence", err)
	}
	fabs[0].Close()
	fabs[1].Close()
	waitGoroutines(t, base)
}

// When one process observes a failure, its peer-down broadcast makes
// every other survivor attribute the SAME rank — nobody blames the
// neighbor that merely tore down in the cascade.
func TestTCPPeerDownBroadcastAlignsAttribution(t *testing.T) {
	topo := Topology{Workers: 3, Machines: 3, MachineOfWorker: []int{0, 1, 2}}
	fabs := mustDialN(t, 3, topo, nil)

	fabs[2].Fail(2, fmt.Errorf("injected crash"))
	waitDone(t, fabs[0], "survivor 0")
	waitDone(t, fabs[1], "survivor 1")
	for p := 0; p < 2; p++ {
		var pf *errs.PeerFailure
		if err := fabs[p].Err(); !errors.As(err, &pf) || pf.Rank != 2 {
			t.Fatalf("survivor %d attributed %v, want rank 2", p, err)
		}
	}
}

// A single severed connection (broken link, not a dead process) still
// fail-stops both sides with an attribution.
func TestTCPSeveredLinkFailsStop(t *testing.T) {
	fabs := mustDialN(t, 2, twoMachineTopo(), nil)
	if err := fabs[0].SeverPeer(1); err != nil {
		t.Fatal(err)
	}
	waitDone(t, fabs[0], "severing side")
	waitDone(t, fabs[1], "severed side")
	if err := fabs[0].Err(); !errors.Is(err, errs.ErrPeerFailed) {
		t.Fatalf("severing side error %v, want ErrPeerFailed", err)
	}
	if err := fabs[1].Err(); !errors.Is(err, errs.ErrPeerFailed) {
		t.Fatalf("severed side error %v, want ErrPeerFailed", err)
	}
}

// A stale agent dialing into a recovered cluster (older epoch) is
// refused with ErrEpochMismatch; the acceptor keeps waiting for the
// restarted agent rather than failing.
func TestTCPEpochMismatchStaleDialerRefused(t *testing.T) {
	fabs, es := dialN(t, 2, twoMachineTopo(), func(p int, cfg *TCPConfig) {
		cfg.DialTimeout = 2 * time.Second
		if p == 0 {
			cfg.Epoch = 1 // survivor, already at the recovered epoch
		}
	})
	if !errors.Is(es[1], errs.ErrEpochMismatch) {
		t.Fatalf("stale dialer got %v, want ErrEpochMismatch", es[1])
	}
	// The survivor times out waiting for an up-to-date peer (nobody
	// redialed at the right epoch in this test).
	if es[0] == nil {
		fabs[0].Close()
		t.Fatal("survivor rendezvous succeeded with a stale peer")
	}
}

// The reverse skew — the acceptor is the stale one — must fail the
// acceptor's own rendezvous too: it is the process that missed a
// recovery and must re-read the epoch, not the cluster.
func TestTCPEpochMismatchStaleAcceptorFails(t *testing.T) {
	_, es := dialN(t, 2, twoMachineTopo(), func(p int, cfg *TCPConfig) {
		cfg.DialTimeout = 2 * time.Second
		if p == 1 {
			cfg.Epoch = 3 // the dialer is ahead
		}
	})
	if !errors.Is(es[0], errs.ErrEpochMismatch) {
		t.Fatalf("stale acceptor got %v, want ErrEpochMismatch", es[0])
	}
	if !errors.Is(es[1], errs.ErrEpochMismatch) {
		t.Fatalf("ahead dialer got %v, want ErrEpochMismatch", es[1])
	}
}

// A rendezvous where a peer never shows up is attributed to the first
// missing rank, so operators know which agent to look at.
func TestTCPRendezvousTimeoutAttributed(t *testing.T) {
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln0.Close()
	_, err = DialTCP(context.Background(), TCPConfig{
		Topo: twoMachineTopo(), Process: 0,
		Addrs:       []string{ln0.Addr().String(), "127.0.0.1:1"},
		Listener:    ln0,
		DialTimeout: 500 * time.Millisecond,
	})
	if !errors.Is(err, errs.ErrPeerFailed) {
		t.Fatalf("rendezvous timeout error %v, want ErrPeerFailed attribution", err)
	}
	var pf *errs.PeerFailure
	if !errors.As(err, &pf) || pf.Rank != 1 {
		t.Fatalf("timeout attributed %v, want rank 1", err)
	}
}
