package experiments

import (
	"fmt"

	"parallax/internal/core"
	"parallax/internal/engine"
	"parallax/internal/metrics"
	"parallax/internal/models"
)

// The paper's stated future work (§7, "Increasing Variable Sparsity
// through Network Sparsification"): pruning techniques make a dense model
// sparse by touching only a subset of each variable per input, and "even
// when the model is intrinsically dense, by applying network pruning or
// quantization, we believe that Parallax's hybrid architecture can
// outperform other frameworks that only utilize the PS or AR
// architecture". This experiment implements it: ResNet-50 with runtime
// pruning at ratio r makes every variable sparse with α = 1−r, and the
// hybrid architecture (with the α-threshold rule enabled, so hot variables
// stay on AllReduce) is compared against pure AR and pure PS.
//
// Finding (recorded in EXPERIMENTS.md): the conjecture holds at moderate
// pruning and inverts at extreme pruning. At 50-80% pruning the hybrid
// clearly beats pure AR (whose AllGatherv must circulate large
// 48-worker concatenations) — the paper's intuition is right. At 95-99%
// pruning the AllGatherv blocks become tiny while the PS path still pays
// its fixed per-message cost (48 workers × P partitions × ~2 ms of
// server-side RPC/accumulator handling — the constant calibrated to
// reproduce the paper's own TF-PS throughput), so pure AR overtakes both
// PS and the byte-threshold hybrid. A production hybrid would want a
// cost-model-based routing decision rather than the byte-only α rule for
// many-small-variable models.

// PruningRow is one pruning ratio's comparison.
type PruningRow struct {
	PruneRatio float64
	Alpha      float64
	Hybrid     float64
	PureAR     float64
	PurePS     float64
	// HybridPSVars counts variables the hybrid plan kept on the PS path.
	HybridPSVars int
}

// ExtensionPruning sweeps pruning ratios on a sparsified ResNet-50.
func ExtensionPruning(env Env) []PruningRow {
	threshold := core.DefaultAlphaThreshold(env.HW)
	var out []PruningRow
	for _, prune := range []float64{0.0, 0.5, 0.8, 0.95, 0.99} {
		alpha := 1 - prune
		if alpha <= 0 {
			alpha = 0.01
		}
		spec := models.ResNet50()
		spec.Name = fmt.Sprintf("ResNet-50-pruned-%.0f%%", prune*100)
		if prune > 0 {
			for i := range spec.Vars {
				spec.Vars[i].Sparse = true
				spec.Vars[i].Alpha = alpha
				spec.Vars[i].PartitionTarget = spec.Vars[i].Elements() > 1_000_000
			}
			// Pruned networks also compute less.
			spec.FwdTime *= alpha
			spec.BwdTime *= alpha
		}

		run := func(arch core.Arch, thresholdOn bool) (engine.Result, *core.Plan) {
			th := 0.0
			if thresholdOn {
				th = threshold
			}
			plan, err := core.BuildPlan(engine.PlanVars(spec), core.Options{
				Arch: arch, NumMachines: env.Machines, SparsePartitions: 32,
				SmartPlacement:      arch != core.ArchNaivePS,
				AlphaDenseThreshold: th,
			})
			if err != nil {
				panic(err)
			}
			res, err := engine.Run(engine.Config{
				Model: spec, Plan: plan, Machines: env.Machines, GPUsPerMachine: env.GPUs,
				HW: env.HW, LocalAggregation: arch == core.ArchHybrid || arch == core.ArchOptPS,
				Iterations: engine.DefaultIterations, Warmup: engine.DefaultWarmup,
			})
			if err != nil {
				panic(err)
			}
			return res, plan
		}

		hyb, plan := run(core.ArchHybrid, true)
		ar, _ := run(core.ArchAR, false)
		ps, _ := run(core.ArchNaivePS, false)
		out = append(out, PruningRow{
			PruneRatio:   prune,
			Alpha:        alpha,
			Hybrid:       hyb.Throughput,
			PureAR:       ar.Throughput,
			PurePS:       ps.Throughput,
			HybridPSVars: plan.CountByMethod()[core.MethodPS],
		})
	}
	return out
}

// RenderPruning formats the extension experiment.
func RenderPruning(rows []PruningRow) string {
	t := metrics.NewTable("Extension (paper §7 future work): pruned ResNet-50, hybrid vs pure architectures",
		"prune", "alpha", "Hybrid", "pure AR", "pure PS", "PS-routed vars")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.0f%%", r.PruneRatio*100),
			fmt.Sprintf("%.2f", r.Alpha),
			humanize(r.Hybrid), humanize(r.PureAR), humanize(r.PurePS),
			fmt.Sprintf("%d", r.HybridPSVars))
	}
	t.AddNote("hybrid uses the alpha-threshold rule: hot variables stay on AllReduce, cold ones move to PS")
	return t.String()
}
