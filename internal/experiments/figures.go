package experiments

import (
	"fmt"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/data"
	"parallax/internal/graph"
	"parallax/internal/metrics"
	"parallax/internal/models"
	"parallax/internal/optim"
	"parallax/internal/tensor"
	"parallax/internal/transform"
)

// ---------------------------------------------------------------- Fig. 7

// Figure7Row is one model's convergence comparison: real training gives
// the iteration count to the target metric (identical across frameworks —
// synchronous training computes the same updates regardless of
// architecture), and the engine gives each framework's step time, so
// time-to-target = iterations × step time. This is exactly the structure
// of the paper's Figure 7: all frameworks converge to the same target,
// separated only by throughput.
type Figure7Row struct {
	Model         string
	TargetLoss    float64
	Iterations    int
	TimeParallax  float64 // seconds of simulated wall time to target
	TimeTFPS      float64
	TimeHorovod   float64
	PaperVsTFPS   float64 // paper's speedup of Parallax over TF-PS
	PaperVsHorovd float64
}

// SpeedupVsTFPS returns the measured Parallax-vs-TF-PS speedup.
func (r Figure7Row) SpeedupVsTFPS() float64 { return r.TimeTFPS / r.TimeParallax }

// SpeedupVsHorovod returns the measured Parallax-vs-Horovod speedup.
func (r Figure7Row) SpeedupVsHorovod() float64 { return r.TimeHorovod / r.TimeParallax }

// Figure7Result holds all three convergence experiments.
type Figure7Result struct {
	Rows []Figure7Row
}

// Figure7 trains the three tiny real models (dense classifier standing in
// for ResNet-50, TinyLM for LM, TinyNMT for NMT) on 4 in-process workers
// with the real hybrid data plane, then scales the iteration axis with the
// paper-scale step times of each framework.
func Figure7(env Env) Figure7Result {
	var out Figure7Result

	stepTimes := func(spec *models.Spec) (prlx, tfps, hvd float64) {
		p := bestPartitions(spec)
		prlx = env.run(spec, core.ArchHybrid, env.Machines, env.GPUs, p).StepTime
		tfps = env.run(spec, core.ArchNaivePS, env.Machines, env.GPUs, p).StepTime
		hvd = env.run(spec, core.ArchAR, env.Machines, env.GPUs, p).StepTime
		return
	}

	// Dense model analogue (paper Fig 7(a): ResNet-50, target top-1 23.74%).
	mlpIters, mlpTarget := trainTinyMLPToTarget()
	p1, t1, h1 := stepTimes(models.ResNet50())
	out.Rows = append(out.Rows, Figure7Row{
		Model: "ResNet-50 (TinyMLP)", TargetLoss: mlpTarget, Iterations: mlpIters,
		TimeParallax: float64(mlpIters) * p1, TimeTFPS: float64(mlpIters) * t1,
		TimeHorovod: float64(mlpIters) * h1,
		PaperVsTFPS: 1.5, PaperVsHorovd: 1.0,
	})

	// LM analogue (paper Fig 7(b), target perplexity 47.5).
	lmIters, lmTarget := trainTinyLMToTarget()
	p2, t2, h2 := stepTimes(models.LM())
	out.Rows = append(out.Rows, Figure7Row{
		Model: "LM (TinyLM)", TargetLoss: lmTarget, Iterations: lmIters,
		TimeParallax: float64(lmIters) * p2, TimeTFPS: float64(lmIters) * t2,
		TimeHorovod: float64(lmIters) * h2,
		PaperVsTFPS: 2.6, PaperVsHorovd: 5.9,
	})

	// NMT analogue (paper Fig 7(c), target BLEU 22.5).
	nmtIters, nmtTarget := trainTinyNMTToTarget()
	p3, t3, h3 := stepTimes(models.NMT())
	out.Rows = append(out.Rows, Figure7Row{
		Model: "NMT (TinyNMT)", TargetLoss: nmtTarget, Iterations: nmtIters,
		TimeParallax: float64(nmtIters) * p3, TimeTFPS: float64(nmtIters) * t3,
		TimeHorovod: float64(nmtIters) * h3,
		PaperVsTFPS: 1.7, PaperVsHorovd: 2.3,
	})
	return out
}

// trainDistributedToTarget trains graph g on a 2×2 in-process cluster with
// the hybrid plan until the loss reaches target (fraction of the initial
// loss) and returns the iteration count.
func trainDistributedToTarget(g *graph.Graph, feeds func(step, workers int) []graph.Feed,
	targetFrac float64, maxIters int) (int, float64) {
	ri := cluster.Uniform(2, 2)
	var vars []core.VarInfo
	for _, v := range g.Variables() {
		sparse := g.GradKind(v) == graph.GradSparse
		alpha := 1.0
		if sparse {
			alpha = 0.1
		}
		width := 1
		for _, d := range v.Shape[1:] {
			width *= d
		}
		vars = append(vars, core.VarInfo{
			Name: v.Name, Rows: int64(v.Shape[0]), Width: int64(width),
			Sparse: sparse, Alpha: alpha, PartitionTarget: v.PartitionScope >= 0,
		})
	}
	plan, err := core.BuildPlan(vars, core.Options{
		Arch: core.ArchHybrid, NumMachines: ri.NumMachines(),
		SparsePartitions: 4, SmartPlacement: true,
	})
	if err != nil {
		panic(err)
	}
	tr, err := transform.New(g, transform.Options{
		Plan: plan, Resource: ri,
		NewOptimizer:     func() optim.Optimizer { return optim.NewSGD(0.5) },
		DenseAgg:         optim.AggMean,
		SparseAgg:        optim.AggMean,
		LocalAggregation: true,
	})
	if err != nil {
		panic(err)
	}
	defer tr.Close()
	first := -1.0
	target := -1.0
	for it := 0; it < maxIters; it++ {
		loss, err := tr.Step(feeds(it, tr.Workers()))
		if err != nil {
			panic(err)
		}
		if first < 0 {
			first = loss
			target = first * targetFrac
		}
		if loss <= target {
			return it + 1, target
		}
	}
	return maxIters, target
}

func trainTinyMLPToTarget() (int, float64) {
	cfg := models.DefaultTinyMLP()
	g := models.BuildTinyMLP(cfg)
	gen := data.NewImages(cfg.Batch, cfg.Features, cfg.Classes, 21)
	return trainDistributedToTarget(g, func(step, workers int) []graph.Feed {
		feeds := make([]graph.Feed, workers)
		for w := range feeds {
			x, labels := gen.Next()
			feeds[w] = graph.Feed{
				Floats: map[string]*tensor.Dense{"images": x},
				Ints:   map[string][]int{"labels": labels},
			}
		}
		return feeds
	}, 0.25, 400)
}

func trainTinyLMToTarget() (int, float64) {
	cfg := models.DefaultTinyLM()
	g := models.BuildTinyLM(cfg)
	shards := []*data.ZipfText{}
	for w := 0; w < 4; w++ {
		shards = append(shards, data.NewZipfText(cfg.Vocab, cfg.Batch, 1, 1.0, int64(40+w)))
	}
	return trainDistributedToTarget(g, func(step, workers int) []graph.Feed {
		feeds := make([]graph.Feed, workers)
		for w := range feeds {
			b := shards[w].Next()
			feeds[w] = graph.Feed{Ints: map[string][]int{"tokens": b.Tokens, "labels": b.Labels}}
		}
		return feeds
	}, 0.9, 400)
}

func trainTinyNMTToTarget() (int, float64) {
	cfg := models.DefaultTinyNMT()
	g := models.BuildTinyNMT(cfg)
	srcGen := data.NewZipfText(cfg.SrcVocab, cfg.Batch, 1, 1.0, 51)
	dstGen := data.NewZipfText(cfg.DstVocab, cfg.Batch, 1, 1.0, 52)
	return trainDistributedToTarget(g, func(step, workers int) []graph.Feed {
		feeds := make([]graph.Feed, workers)
		for w := range feeds {
			s := srcGen.Next()
			d := dstGen.Next()
			feeds[w] = graph.Feed{Ints: map[string][]int{
				"en_texts": s.Tokens, "de_texts": d.Tokens, "labels": d.Labels,
			}}
		}
		return feeds
	}, 0.8, 400)
}

// Render formats the result.
func (r Figure7Result) Render() string {
	t := metrics.NewTable("Figure 7: convergence time to target (simulated wall time)",
		"Model", "iters", "Parallax", "TF-PS", "Horovod", "vs TF-PS", "vs Horovod", "paper")
	for _, row := range r.Rows {
		t.AddRow(row.Model, fmt.Sprintf("%d", row.Iterations),
			fmt.Sprintf("%.1fs", row.TimeParallax),
			fmt.Sprintf("%.1fs", row.TimeTFPS),
			fmt.Sprintf("%.1fs", row.TimeHorovod),
			fmt.Sprintf("%.2fx", row.SpeedupVsTFPS()),
			fmt.Sprintf("%.2fx", row.SpeedupVsHorovod()),
			fmt.Sprintf("%.1fx/%.1fx", row.PaperVsTFPS, row.PaperVsHorovd))
	}
	t.AddNote("real training on the in-process data plane fixes the iteration count; framework step times come from the paper-scale engine")
	return t.String()
}
