// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simulated cluster, printing measured values next
// to the paper's reported ones. Each experiment returns structured results
// (for tests and benches) and renders a plain-text table.
//
// The per-experiment index lives in DESIGN.md; EXPERIMENTS.md records a
// full paper-vs-measured run.
package experiments

import (
	"fmt"

	"parallax/internal/cluster"
	"parallax/internal/core"
	"parallax/internal/engine"
	"parallax/internal/metrics"
	"parallax/internal/models"
)

// Env fixes the simulated cluster for all experiments: the paper's testbed
// of 8 machines × 6 GPUs on 100 Gbps InfiniBand.
type Env struct {
	HW       cluster.Hardware
	Machines int
	GPUs     int // per machine
}

// DefaultEnv returns the paper's cluster.
func DefaultEnv() Env {
	return Env{HW: cluster.DefaultHardware(), Machines: 8, GPUs: 6}
}

// bestPartitions returns the paper's tuned partition counts (Table 2 best:
// 128 for LM, 64 for NMT; dense models are unpartitioned).
func bestPartitions(spec *models.Spec) int {
	switch spec.Name {
	case "LM":
		return 128
	case "NMT":
		return 64
	default:
		return 1
	}
}

// run simulates spec under arch on the env cluster.
func (e Env) run(spec *models.Spec, arch core.Arch, machines, gpus, parts int) engine.Result {
	res, err := engine.RunArch(spec, arch, machines, gpus, parts, e.HW)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err)) // configs are internal constants
	}
	return res
}

// FrameworkName maps architectures to the systems the paper compares.
func FrameworkName(a core.Arch) string {
	switch a {
	case core.ArchAR:
		return "Horovod"
	case core.ArchNaivePS:
		return "TF-PS"
	case core.ArchHybrid:
		return "Parallax"
	case core.ArchOptPS:
		return "OptPS"
	default:
		return a.String()
	}
}

// humanize shortens throughput numbers for table cells.
func humanize(v float64) string { return metrics.Humanize(v) }
