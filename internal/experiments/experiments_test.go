package experiments

import (
	"math"
	"strings"
	"testing"
)

// smallEnv shrinks the cluster so the full experiment suite stays fast in
// unit tests; shape assertions that need the paper cluster use DefaultEnv
// explicitly.
func TestTable1ShapesAndRender(t *testing.T) {
	env := DefaultEnv()
	res := Table1(env)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		sparseModel := row.SparseElems > 0
		if sparseModel && !(row.PS > row.AR) {
			t.Errorf("%s: PS (%v) should beat AR (%v)", row.Model, row.PS, row.AR)
		}
		if !sparseModel && !(row.AR > row.PS) {
			t.Errorf("%s: AR (%v) should beat PS (%v)", row.Model, row.AR, row.PS)
		}
		// Within a factor 2.5 of the paper's absolute numbers.
		for _, pair := range [][2]float64{{row.PS, row.PaperPS}, {row.AR, row.PaperAR}} {
			ratio := pair[0] / pair[1]
			if ratio < 0.4 || ratio > 2.5 {
				t.Errorf("%s: measured %v vs paper %v (ratio %.2f) out of band", row.Model, pair[0], pair[1], ratio)
			}
		}
	}
	out := res.Render()
	if !strings.Contains(out, "ResNet-50") || !strings.Contains(out, "alpha") {
		t.Error("render incomplete")
	}
}

func TestTable2InteriorOptimumAndDip(t *testing.T) {
	res := Table2(DefaultEnv())
	lm := res.Throughput["LM"]
	if len(lm) != 6 {
		t.Fatalf("LM series = %v", lm)
	}
	if !(lm[1] > lm[0]) {
		t.Errorf("LM should improve from P=8 to P=16: %v", lm)
	}
	if !(lm[5] < lm[4]) {
		t.Errorf("LM should dip from P=128 to P=256: %v", lm)
	}
	if strings.Count(res.Render(), "LM") < 2 {
		t.Error("render missing paper rows")
	}
}

func TestTable3FormulasHold(t *testing.T) {
	res := Table3(DefaultEnv())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		err := math.Abs(row.Measured-row.Formula) / row.Formula
		if err > 0.05 {
			t.Errorf("%s: measured %v vs formula %v (%.1f%% off)", row.Case, row.Measured, row.Formula, err*100)
		}
	}
}

func TestTable4Ordering(t *testing.T) {
	res := Table4(DefaultEnv())
	for _, m := range res.Models {
		tp := res.Tp[m]
		if !(tp["HYB"] >= tp["OptPS"] && tp["OptPS"] >= tp["NaivePS"] && tp["NaivePS"] > tp["AR"]) {
			t.Errorf("%s ordering broken: %v", m, tp)
		}
	}
}

func TestTable6SpeedupGrowsAsAlphaShrinks(t *testing.T) {
	res := Table6(DefaultEnv())
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first := res.Rows[0] // length 120, alpha ~1
	last := res.Rows[len(res.Rows)-1]
	if !(last.Speedup > first.Speedup) {
		t.Errorf("speedup should grow as alpha shrinks: %.2f (a=%.2f) -> %.2f (a=%.2f)",
			first.Speedup, first.AlphaModel, last.Speedup, last.AlphaModel)
	}
	for _, row := range res.Rows {
		if row.Speedup < 1 {
			t.Errorf("length %d: Parallax slower than TF-PS (%.2fx)", row.Length, row.Speedup)
		}
	}
}

func TestFigure8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("48-run sweep")
	}
	res := Figure8(DefaultEnv())
	// Parallax never loses to either baseline at 8 machines.
	for _, model := range []string{"ResNet-50", "Inception-v3", "LM", "NMT"} {
		p8 := res.Tp[model]["Parallax"][3]
		for _, fw := range []string{"TF-PS", "Horovod"} {
			if p8 < res.Tp[model][fw][3]*0.99 {
				t.Errorf("%s: Parallax (%v) loses to %s (%v) at 8 machines", model, p8, fw, res.Tp[model][fw][3])
			}
		}
	}
	// Horovod's LM curve must be flat-to-decreasing past 2 machines.
	lm := res.Tp["LM"]["Horovod"]
	if lm[3] > lm[1]*1.5 {
		t.Errorf("Horovod LM should not scale: %v", lm)
	}
	// Dense models scale near-linearly on Parallax.
	rn := res.Tp["ResNet-50"]["Parallax"]
	if rn[3] < rn[0]*6 {
		t.Errorf("ResNet-50 Parallax scaling too weak: %v", rn)
	}
}

func TestFigure9NormalizedBands(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	res := Figure9(DefaultEnv())
	check := func(model string, lo, hi float64) {
		s := res.Normalized[model]
		got := s[len(s)-1]
		if got < lo || got > hi {
			t.Errorf("%s normalized@48 = %.1f, want in [%v,%v] (paper %.1f)",
				model, got, lo, hi, res.Paper48[model]["Parallax"])
		}
	}
	// Paper: 39.8, 43.6, 9.4, 18.4. Allow generous bands.
	check("ResNet-50", 32, 48)
	check("Inception-v3", 35, 48)
	check("LM", 4, 25)
	check("NMT", 8, 40)
	// Ordering vs baselines (sparse models): Parallax > TF-PS > Horovod.
	for _, model := range []string{"LM", "NMT"} {
		p := res.Normalized[model][len(res.Normalized[model])-1]
		tf := res.At48[model]["TF-PS"]
		hv := res.At48[model]["Horovod"]
		if !(p > tf) || !(tf > hv) {
			t.Errorf("%s: normalized ordering broken: parallax %.1f tf %.1f horovod %.1f", model, p, tf, hv)
		}
	}
}

func TestFigure7ConvergenceSpeedups(t *testing.T) {
	if testing.Short() {
		t.Skip("real training")
	}
	res := Figure7(DefaultEnv())
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Iterations <= 1 {
			t.Errorf("%s: trivial convergence (%d iters)", row.Model, row.Iterations)
		}
	}
	// LM and NMT: Parallax converges faster than both baselines.
	for _, i := range []int{1, 2} {
		row := res.Rows[i]
		if row.SpeedupVsTFPS() <= 1 || row.SpeedupVsHorovod() <= 1 {
			t.Errorf("%s: speedups %.2f / %.2f, want > 1", row.Model, row.SpeedupVsTFPS(), row.SpeedupVsHorovod())
		}
	}
	// Dense model: Parallax ~= Horovod (ratio near 1).
	r0 := res.Rows[0]
	if r := r0.SpeedupVsHorovod(); r < 0.9 || r > 1.3 {
		t.Errorf("dense model Parallax vs Horovod = %.2f, want ~1", r)
	}
}

func TestTable5ParallaxNearOptimalWithFewRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force sweep")
	}
	res := Table5(DefaultEnv())
	for _, row := range res.Rows {
		if row.Parallax < row.Min {
			t.Errorf("%s: Parallax partitioning (%v) worse than Min (%v)", row.Model, row.Parallax, row.Min)
		}
		// Paper: "does not fall behind more than 5% compared to the
		// brute-force method" — allow 10% here.
		if row.Parallax < row.Optimal*0.90 {
			t.Errorf("%s: Parallax (%v) more than 10%% behind brute force (%v)", row.Model, row.Parallax, row.Optimal)
		}
		if row.ParallaxRuns*3 > row.BruteRuns {
			t.Errorf("%s: sampling used %d runs vs brute %d — not clearly cheaper", row.Model, row.ParallaxRuns, row.BruteRuns)
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps")
	}
	env := DefaultEnv()
	alpha := AblationAlphaThreshold(env)
	// Dense promotion must win at high alpha and lose at low alpha.
	if alpha[0].DenseWins {
		t.Errorf("alpha=%.2f: dense should not win (%v vs %v)", alpha[0].Alpha, alpha[0].AsDense, alpha[0].AsPS)
	}
	if !alpha[len(alpha)-1].DenseWins {
		t.Errorf("alpha=%.2f: dense should win (%v vs %v)",
			alpha[len(alpha)-1].Alpha, alpha[len(alpha)-1].AsDense, alpha[len(alpha)-1].AsPS)
	}

	local := AblationLocalAggregation(env)
	for _, r := range local {
		if r.WithLocal < r.Without {
			t.Errorf("%s: local aggregation hurt (%v vs %v)", r.Model, r.WithLocal, r.Without)
		}
	}

	placement := AblationPlacement(env)
	for _, r := range placement {
		if r.SmartImbal > r.NaiveImbal+0.01 {
			t.Errorf("%s: smart placement more imbalanced (%.2f vs %.2f)", r.Model, r.SmartImbal, r.NaiveImbal)
		}
	}
	// Rendering smoke tests.
	for _, s := range []string{
		RenderAblationAlpha(alpha, env),
		RenderAblationLocalAgg(local),
		RenderAblationPlacement(placement),
	} {
		if !strings.Contains(s, "Ablation") {
			t.Error("bad render")
		}
	}
}

func TestExtensionPruning(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rows := ExtensionPruning(DefaultEnv())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Unpruned: hybrid == AR (no sparse variables).
	if rows[0].HybridPSVars != 0 {
		t.Errorf("unpruned model routed %d vars to PS", rows[0].HybridPSVars)
	}
	// Moderate pruning: the paper's conjecture holds — hybrid beats pure
	// AR, whose AllGatherv circulates large concatenations.
	mid := rows[1] // 50% pruning
	if !(mid.Hybrid > mid.PureAR) {
		t.Errorf("pruned %.0f%%: hybrid (%v) should beat pure AR (%v)", mid.PruneRatio*100, mid.Hybrid, mid.PureAR)
	}
	// Extreme pruning: the inversion — tiny AllGatherv blocks win while PS
	// still pays per-message costs (see the package comment).
	last := rows[len(rows)-1]
	if !(last.PureAR > last.PurePS) {
		t.Errorf("pruned %.0f%%: expected AR (%v) to beat PS (%v)", last.PruneRatio*100, last.PureAR, last.PurePS)
	}
	if last.HybridPSVars == 0 {
		t.Error("alpha-threshold rule routed nothing to PS at alpha=0.01")
	}
	if !strings.Contains(RenderPruning(rows), "Extension") {
		t.Error("bad render")
	}
}
