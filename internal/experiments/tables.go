package experiments

import (
	"fmt"
	"math"

	"parallax/internal/core"
	"parallax/internal/metrics"
	"parallax/internal/models"
	"parallax/internal/partition"
)

// ---------------------------------------------------------------- Table 1

// Table1Row is one model's architecture comparison.
type Table1Row struct {
	Model                   string
	DenseElems, SparseElems int64
	AlphaModel              float64
	PS, AR                  float64 // measured throughput (units/s)
	PaperPS, PaperAR        float64
}

// Table1Result reproduces Table 1: variable sizes, α_model, and PS vs AR
// throughput for the four models on 48 GPUs.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 runs the experiment.
func Table1(env Env) Table1Result {
	paper := map[string][2]float64{
		"ResNet-50":    {5_800, 7_600},
		"Inception-v3": {3_800, 5_900},
		"LM":           {98_900, 45_500},
		"NMT":          {102_000, 68_300},
	}
	var out Table1Result
	for _, spec := range models.PaperModels() {
		p := bestPartitions(spec)
		ps := env.run(spec, core.ArchNaivePS, env.Machines, env.GPUs, p)
		ar := env.run(spec, core.ArchAR, env.Machines, env.GPUs, p)
		out.Rows = append(out.Rows, Table1Row{
			Model:       spec.Name,
			DenseElems:  spec.DenseElements(),
			SparseElems: spec.SparseElements(),
			AlphaModel:  spec.AlphaModel(),
			PS:          ps.Throughput,
			AR:          ar.Throughput,
			PaperPS:     paper[spec.Name][0],
			PaperAR:     paper[spec.Name][1],
		})
	}
	return out
}

// Render formats the result.
func (r Table1Result) Render() string {
	t := metrics.NewTable("Table 1: variable sizes, alpha_model, PS vs AR throughput (48 GPUs)",
		"Model", "Dense", "Sparse", "alpha", "PS", "AR", "paper PS", "paper AR")
	for _, row := range r.Rows {
		t.AddRow(row.Model,
			fmt.Sprintf("%.1fM", float64(row.DenseElems)/1e6),
			fmt.Sprintf("%.1fM", float64(row.SparseElems)/1e6),
			fmt.Sprintf("%.2f", row.AlphaModel),
			humanize(row.PS), humanize(row.AR),
			humanize(row.PaperPS), humanize(row.PaperAR))
	}
	t.AddNote("PS = TF-PS (naive parameter server), AR = Horovod (NCCL AllReduce + MPI AllGatherv)")
	return t.String()
}

// ---------------------------------------------------------------- Table 2

// Table2Result reproduces Table 2: PS throughput vs number of sparse
// variable partitions.
type Table2Result struct {
	Partitions []int
	Throughput map[string][]float64 // model -> per-partition-count
	Paper      map[string][]float64
}

// Table2 runs the sweep.
func Table2(env Env) Table2Result {
	out := Table2Result{
		Partitions: []int{8, 16, 32, 64, 128, 256},
		Throughput: map[string][]float64{},
		Paper: map[string][]float64{
			"LM":  {50_500, 78_600, 96_500, 96_100, 98_900, 93_200},
			"NMT": {90_700, 97_000, 96_500, 101_600, 98_500, 100_000},
		},
	}
	for _, spec := range []*models.Spec{models.LM(), models.NMT()} {
		for _, p := range out.Partitions {
			res := env.run(spec, core.ArchNaivePS, env.Machines, env.GPUs, p)
			out.Throughput[spec.Name] = append(out.Throughput[spec.Name], res.Throughput)
		}
	}
	return out
}

// Render formats the result.
func (r Table2Result) Render() string {
	headers := []string{"Model"}
	for _, p := range r.Partitions {
		headers = append(headers, fmt.Sprintf("P=%d", p))
	}
	t := metrics.NewTable("Table 2: PS throughput (words/s) vs partition count (48 GPUs)", headers...)
	for _, name := range []string{"LM", "NMT"} {
		row := []string{name}
		for _, v := range r.Throughput[name] {
			row = append(row, humanize(v))
		}
		t.AddRow(row...)
		prow := []string{name + " (paper)"}
		for _, v := range r.Paper[name] {
			prow = append(prow, humanize(v))
		}
		t.AddRow(prow...)
	}
	return t.String()
}

// ---------------------------------------------------------------- Table 3

// Table3Row compares the paper's closed-form per-machine network transfer
// (Table 3's m-variables column, all machines summed) against the fabric's
// measured byte counters.
type Table3Row struct {
	Case      string
	Formula   float64 // predicted bytes per machine (cluster total / N)
	Measured  float64
	HotSpot   float64 // measured max machine bytes (PS asymmetry, §3.1)
	HotSpotOK bool
}

// Table3Result holds all four (type × architecture) combinations.
type Table3Result struct {
	Rows []Table3Row
	N    int
}

// Table3 measures network transfer with one worker per machine, matching
// the formulas' assumption ("each machine contains only one worker
// process").
func Table3(env Env) Table3Result {
	const n = 4
	const alpha = 0.2
	const mVars = 6
	mkSpec := func(sparse bool) *models.Spec {
		s := &models.Spec{
			Name: "micro", Unit: "units", BatchPerGPU: 1, UnitsPerExample: 1,
			FwdTime: 0.01, BwdTime: 0.02, Layers: mVars,
		}
		for i := 0; i < mVars; i++ {
			a := 1.0
			if sparse {
				a = alpha
			}
			s.Vars = append(s.Vars, models.VarSpec{
				Name: fmt.Sprintf("v%d", i), Rows: 5000, Width: 100,
				Sparse: sparse, Alpha: a, Layer: i,
			})
		}
		return s
	}
	w := float64(5000 * 100 * 4)
	var out Table3Result
	out.N = n

	add := func(name string, spec *models.Spec, arch core.Arch, perMachineFormula, hotFormula float64) {
		res := env.run(spec, arch, n, 1, 1)
		row := Table3Row{
			Case:     name,
			Formula:  perMachineFormula,
			Measured: res.AvgMachineBytes(),
			HotSpot:  res.MaxMachineBytes(),
		}
		row.HotSpotOK = hotFormula == 0 ||
			math.Abs(res.MaxMachineBytes()-hotFormula)/hotFormula < 0.1
		out.Rows = append(out.Rows, row)
	}

	nn := float64(n)
	m := float64(mVars)
	// Dense PS: 4wm(N-1)/N per machine.
	add("dense/PS", mkSpec(false), core.ArchNaivePS, 4*w*m*(nn-1)/nn, 0)
	// Dense AR: 4wm(N-1)/N per machine; no hot spot.
	add("dense/AR", mkSpec(false), core.ArchAR, 4*w*m*(nn-1)/nn, 0)
	// Sparse PS: 4αwm(N-1)/N per machine.
	add("sparse/PS", mkSpec(true), core.ArchNaivePS, 4*alpha*w*m*(nn-1)/nn, 0)
	// Sparse AR (AllGatherv): 2αwm(N-1) per machine.
	add("sparse/AR", mkSpec(true), core.ArchAR, 2*alpha*w*m*(nn-1), 0)
	return out
}

// Render formats the result.
func (r Table3Result) Render() string {
	t := metrics.NewTable(fmt.Sprintf("Table 3: network transfer per machine, %d machines, m variables", r.N),
		"Case", "formula", "measured", "err%", "max machine")
	for _, row := range r.Rows {
		errPct := 100 * math.Abs(row.Measured-row.Formula) / row.Formula
		t.AddRow(row.Case,
			metrics.HumanBytes(row.Formula),
			metrics.HumanBytes(row.Measured),
			fmt.Sprintf("%.1f", errPct),
			metrics.HumanBytes(row.HotSpot))
	}
	t.AddNote("formulas from Table 3 of the paper; measured = simnet byte counters per iteration")
	return t.String()
}

// ---------------------------------------------------------------- Table 4

// Table4Result reproduces Table 4: throughput of AR, naive PS, optimized
// PS and the hybrid architecture.
type Table4Result struct {
	Models []string
	Archs  []string
	Tp     map[string]map[string]float64 // model -> arch -> throughput
	Paper  map[string]map[string]float64
}

// Table4 runs the ablation.
func Table4(env Env) Table4Result {
	out := Table4Result{
		Archs: []string{"AR", "NaivePS", "OptPS", "HYB"},
		Tp:    map[string]map[string]float64{},
		Paper: map[string]map[string]float64{
			"LM":  {"AR": 45_500, "NaivePS": 98_900, "OptPS": 250_000, "HYB": 274_000},
			"NMT": {"AR": 68_300, "NaivePS": 102_000, "OptPS": 116_000, "HYB": 204_000},
		},
	}
	for _, spec := range []*models.Spec{models.LM(), models.NMT()} {
		p := bestPartitions(spec)
		out.Models = append(out.Models, spec.Name)
		out.Tp[spec.Name] = map[string]float64{
			"AR":      env.run(spec, core.ArchAR, env.Machines, env.GPUs, p).Throughput,
			"NaivePS": env.run(spec, core.ArchNaivePS, env.Machines, env.GPUs, p).Throughput,
			"OptPS":   env.run(spec, core.ArchOptPS, env.Machines, env.GPUs, p).Throughput,
			"HYB":     env.run(spec, core.ArchHybrid, env.Machines, env.GPUs, p).Throughput,
		}
	}
	return out
}

// Render formats the result.
func (r Table4Result) Render() string {
	t := metrics.NewTable("Table 4: architecture ablation (words/s, 48 GPUs)",
		"Model", "AR", "NaivePS", "OptPS", "HYB (AR+OptPS)", "source")
	for _, m := range r.Models {
		t.AddRow(m, humanize(r.Tp[m]["AR"]), humanize(r.Tp[m]["NaivePS"]),
			humanize(r.Tp[m]["OptPS"]), humanize(r.Tp[m]["HYB"]), "measured")
		t.AddRow(m, humanize(r.Paper[m]["AR"]), humanize(r.Paper[m]["NaivePS"]),
			humanize(r.Paper[m]["OptPS"]), humanize(r.Paper[m]["HYB"]), "paper")
	}
	return t.String()
}

// ---------------------------------------------------------------- Table 5

// Table5Row compares partitioning methods for one model.
type Table5Row struct {
	Model                     string
	Parallax, Min, Optimal    float64 // throughput
	ParallaxP, MinP, OptimalP int
	ParallaxRuns, BruteRuns   int
}

// Table5Result reproduces Table 5: Parallax's sampling-based partitioning
// vs the minimum feasible count vs brute force.
type Table5Result struct {
	Rows []Table5Row
}

// Table5 runs the comparison. The measure function behind both searches is
// a real engine run per candidate P, matching §3.2's "performing actual
// training with different values for P, for a few iterations".
func Table5(env Env) Table5Result {
	var out Table5Result
	for _, spec := range []*models.Spec{models.LM(), models.NMT()} {
		minP := 4
		if spec.Name == "NMT" {
			minP = 2
		}
		measure := func(p int) float64 {
			return env.run(spec, core.ArchHybrid, env.Machines, env.GPUs, p).StepTime
		}
		search, err := partition.Search(measure, env.Machines, 2048)
		if err != nil {
			panic(err)
		}
		brute := partition.BruteForce(measure, minP, 2048)
		tp := func(p int) float64 {
			return env.run(spec, core.ArchHybrid, env.Machines, env.GPUs, p).Throughput
		}
		out.Rows = append(out.Rows, Table5Row{
			Model:        spec.Name,
			Parallax:     tp(search.BestP),
			Min:          tp(minP),
			Optimal:      tp(brute.BestP),
			ParallaxP:    search.BestP,
			MinP:         minP,
			OptimalP:     brute.BestP,
			ParallaxRuns: search.Runs,
			BruteRuns:    brute.Runs,
		})
	}
	return out
}

// Render formats the result.
func (r Table5Result) Render() string {
	t := metrics.NewTable("Table 5: partitioning methods (throughput, 48 GPUs)",
		"Model", "Parallax", "Min", "Optimal(brute)", "P(prlx/min/opt)", "runs(prlx/brute)")
	for _, row := range r.Rows {
		t.AddRow(row.Model, humanize(row.Parallax), humanize(row.Min), humanize(row.Optimal),
			fmt.Sprintf("%d/%d/%d", row.ParallaxP, row.MinP, row.OptimalP),
			fmt.Sprintf("%d/%d", row.ParallaxRuns, row.BruteRuns))
	}
	t.AddNote("paper: LM 274k/96.5k/260.3k, NMT 204k/124.1k/208k; Parallax <= 5 sampling runs vs > 50 brute-force runs")
	return t.String()
}

// ---------------------------------------------------------------- Table 6

// Table6Row is one sparsity degree.
type Table6Row struct {
	Length         int
	AlphaModel     float64
	Parallax, TFPS float64
	Speedup        float64
	PaperSpeedup   float64
}

// Table6Result reproduces Table 6: Parallax vs TF-PS under varying
// sparsity degrees of the constructed LM.
type Table6Result struct {
	Rows []Table6Row
}

// Table6 runs the sweep.
func Table6(env Env) Table6Result {
	cases := []struct {
		length       int
		alphaModel   float64
		paperSpeedup float64
	}{
		{120, 1.0, 2.04}, {60, 0.52, 2.33}, {30, 0.28, 2.43},
		{15, 0.16, 2.89}, {8, 0.1, 3.02}, {4, 0.07, 3.03}, {1, 0.04, 3.42},
	}
	var out Table6Result
	for _, c := range cases {
		alphaS := models.Table6Alpha(c.alphaModel)
		spec := models.ConstructedLM(alphaS, c.length)
		p := 64
		prlx := env.run(spec, core.ArchHybrid, env.Machines, env.GPUs, p).Throughput
		tfps := env.run(spec, core.ArchNaivePS, env.Machines, env.GPUs, p).Throughput
		out.Rows = append(out.Rows, Table6Row{
			Length:       c.length,
			AlphaModel:   spec.AlphaModel(),
			Parallax:     prlx,
			TFPS:         tfps,
			Speedup:      prlx / tfps,
			PaperSpeedup: c.paperSpeedup,
		})
	}
	return out
}

// Render formats the result.
func (r Table6Result) Render() string {
	t := metrics.NewTable("Table 6: sparsity-degree sweep, constructed LM (48 GPUs)",
		"length", "alpha_model", "Parallax", "TF-PS", "speedup", "paper speedup")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.Length),
			fmt.Sprintf("%.2f", row.AlphaModel),
			humanize(row.Parallax), humanize(row.TFPS),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%.2fx", row.PaperSpeedup))
	}
	return t.String()
}
