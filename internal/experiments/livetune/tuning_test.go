package livetune

import (
	"strings"
	"testing"
)

func TestOnlinePartitionTuning(t *testing.T) {
	tc := DefaultTuningConfig()
	tc.Vocab, tc.Steps, tc.WarmupSteps = 400, 26, 18 // keep the live runs quick
	res, tbl, err := OnlinePartitionTuning(tc)
	if err != nil {
		t.Fatal(err)
	}
	if res.StaticP != tc.Machines {
		t.Errorf("static run at P=%d, want the machine count %d", res.StaticP, tc.Machines)
	}
	if res.TunedP < 1 || res.Runs < 1 || res.Runs > 5 {
		t.Errorf("tuned decision P=%d after %d runs, want P>=1 within the 5-run budget", res.TunedP, res.Runs)
	}
	if res.StaticTotal.Steps != tc.Steps || res.TunedTotal.Steps != tc.Steps {
		t.Errorf("step accounting: static %d, tuned %d, want %d",
			res.StaticTotal.Steps, res.TunedTotal.Steps, tc.Steps)
	}
	// Resharding is lossless: same workload, same step count, same final
	// loss bits regardless of which partition counts the probes visited.
	if res.FinalLossStatic != res.FinalLossTuned {
		t.Errorf("final losses diverged: static %v, tuned %v", res.FinalLossStatic, res.FinalLossTuned)
	}
	if res.StaticStepsPerSec <= 0 || res.TunedStepsPerSec <= 0 {
		t.Errorf("throughputs missing: static %v, tuned %v", res.StaticStepsPerSec, res.TunedStepsPerSec)
	}
	out := tbl.String()
	for _, want := range []string{"online partition tuning", "auto-tuned", "static default"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
