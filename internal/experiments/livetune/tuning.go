// Package livetune holds the experiment scenarios that run on the LIVE
// data plane (real tensors, the public Runner) rather than the
// discrete-event simulator the rest of internal/experiments uses. It is
// a separate package because it imports the root parallax package,
// which the simulator-backed experiments must not (the root benchmark
// harness imports them back).
package livetune

import (
	"fmt"

	"parallax"
	"parallax/internal/data"
	"parallax/internal/metrics"
)

// TuningConfig sizes the online-tuning comparison: a Zipf-distributed
// LM workload trained on the live data plane (not the simulator).
type TuningConfig struct {
	Machines, GPUs int
	Vocab, Batch   int
	// Steps is the total training budget per run; the tuned run spends
	// its leading steps on the §3.2 measurement probes.
	Steps int
	// WarmupSteps are excluded from the steady-state throughput window
	// (for the tuned run this also covers the tuning phase itself).
	WarmupSteps int
}

// DefaultTuningConfig keeps the comparison under a second on a laptop.
func DefaultTuningConfig() TuningConfig {
	return TuningConfig{Machines: 2, GPUs: 2, Vocab: 1500, Batch: 32, Steps: 60, WarmupSteps: 20}
}

// TuningResult compares a statically partitioned run (P = machine
// count, the no-knowledge default) against Config.AutoPartition's
// tune-while-training search on the same workload.
type TuningResult struct {
	StaticP, TunedP int
	// Runs is the measurement budget the online search consumed (≤ 5).
	Runs int
	// StaticStepsPerSec / TunedStepsPerSec are steady-state throughputs
	// over the post-warmup window.
	StaticStepsPerSec, TunedStepsPerSec float64
	// StaticTotal / TunedTotal are whole-run wall-clock aggregates, so
	// the tuning phase's cost is visible next to its payoff.
	StaticTotal, TunedTotal metrics.LoopStats
	// FinalLossStatic / FinalLossTuned must agree closely: resharding is
	// lossless, so tuning changes when steps happen, not what they
	// compute.
	FinalLossStatic, FinalLossTuned float64
}

// buildTuningLM is the Zipf LM workload: a partitioned embedding feeding
// a dense stack, the hybrid shape the partition search exists for.
func buildTuningLM(cfg TuningConfig) *parallax.Graph {
	rng := parallax.NewRNG(29)
	g := parallax.NewGraph()
	tokens := g.Input("tokens", parallax.Int, cfg.Batch)
	labels := g.Input("labels", parallax.Int, cfg.Batch)
	var emb *parallax.Node
	g.InPartitioner(func() {
		emb = g.Variable("embedding", rng.RandN(0.1, cfg.Vocab, 32))
	})
	w1 := g.Variable("hidden/kernel", rng.RandN(0.1, 32, 64))
	b1 := g.Variable("hidden/bias", parallax.NewDense(64))
	w2 := g.Variable("softmax/kernel", rng.RandN(0.1, 64, cfg.Vocab))
	h := g.Tanh(g.AddBias(g.MatMul(g.Gather(emb, tokens), w1), b1))
	g.SoftmaxCE(g.MatMul(h, w2), labels)
	return g
}

// runTuningCase trains one configuration and returns its aggregate plus
// the steady-state throughput over the post-warmup window.
func runTuningCase(tc TuningConfig, pcfg parallax.Config) (*parallax.Runner, metrics.LoopStats, float64, error) {
	g := buildTuningLM(tc)
	runner, err := parallax.GetRunner(g, parallax.Uniform(tc.Machines, tc.GPUs), pcfg)
	if err != nil {
		return nil, metrics.LoopStats{}, 0, err
	}
	var steady metrics.LoopStats
	total, err := runner.RunLoop(data.NewZipfText(tc.Vocab, tc.Batch, 1, 1.0, 37), tc.Steps,
		func(s parallax.StepStats) {
			if s.Step >= tc.WarmupSteps {
				steady.Observe(s)
			}
		})
	if err != nil {
		runner.Close()
		return nil, metrics.LoopStats{}, 0, err
	}
	return runner, total, steady.StepsPerSec(), nil
}

// OnlinePartitionTuning is the tune-while-training scenario: the same
// Zipf LM trained twice on the real data plane — once with the static
// default partitioning (one partition per machine), once with
// Config.AutoPartition resharding the live job to the searched optimum
// — and the steady-state throughputs compared. It is the live-runtime
// counterpart of the §6.5 search-efficiency experiment: the tuned run
// pays ≤ 5 measurement runs up front and then trains at the fitted
// cost model's optimum.
func OnlinePartitionTuning(tc TuningConfig) (TuningResult, *metrics.Table, error) {
	var res TuningResult

	staticRunner, staticTotal, staticSteady, err := runTuningCase(tc, parallax.Config{
		NewOptimizer:     func() parallax.Optimizer { return parallax.NewSGD(0.5) },
		SparsePartitions: tc.Machines,
	})
	if err != nil {
		return res, nil, fmt.Errorf("static run: %w", err)
	}
	defer staticRunner.Close()

	tunedRunner, tunedTotal, tunedSteady, err := runTuningCase(tc, parallax.Config{
		NewOptimizer:  func() parallax.Optimizer { return parallax.NewSGD(0.5) },
		AutoPartition: true,
	})
	if err != nil {
		return res, nil, fmt.Errorf("tuned run: %w", err)
	}
	defer tunedRunner.Close()

	decision := tunedRunner.PartitionDecision()
	res = TuningResult{
		StaticP:           staticRunner.SparsePartitions(),
		TunedP:            decision.P,
		StaticStepsPerSec: staticSteady,
		TunedStepsPerSec:  tunedSteady,
		StaticTotal:       staticTotal,
		TunedTotal:        tunedTotal,
		FinalLossStatic:   staticTotal.LastLoss,
		FinalLossTuned:    tunedTotal.LastLoss,
	}
	if decision.Search != nil {
		res.Runs = decision.Search.Runs
	}

	tbl := metrics.NewTable(
		fmt.Sprintf("online partition tuning — Zipf LM, %d×%d live cluster", tc.Machines, tc.GPUs),
		"run", "partitions", "search runs", "steady steps/s", "final loss")
	tbl.AddRow("static default", fmt.Sprintf("%d", res.StaticP), "0",
		fmt.Sprintf("%.1f", res.StaticStepsPerSec), fmt.Sprintf("%.4f", res.FinalLossStatic))
	tbl.AddRow("auto-tuned", fmt.Sprintf("%d", res.TunedP), fmt.Sprintf("%d", res.Runs),
		fmt.Sprintf("%.1f", res.TunedStepsPerSec), fmt.Sprintf("%.4f", res.FinalLossTuned))
	tbl.AddNote("steady-state window: steps %d..%d; the tuned run's warmup includes the ≤5 measurement probes (§6.5)",
		tc.WarmupSteps, tc.Steps-1)
	tbl.AddNote("resharding is lossless, so both runs' loss trajectories depend only on the step count")
	return res, tbl, nil
}
