package experiments

import (
	"fmt"

	"parallax/internal/core"
	"parallax/internal/metrics"
	"parallax/internal/models"
)

// ---------------------------------------------------------------- Fig. 8

// Figure8Result reproduces Figure 8: throughput of the four models on
// Parallax, TF-PS and Horovod as machines scale 1→8 (6 GPUs each).
type Figure8Result struct {
	Machines []int
	// Tp[model][framework][i] is throughput at Machines[i].
	Tp map[string]map[string][]float64
	// Paper numbers from Figure 8 (throughput in units/s).
	Paper map[string]map[string][]float64
}

// Figure8 runs the sweep.
func Figure8(env Env) Figure8Result {
	out := Figure8Result{
		Machines: []int{1, 2, 4, 8},
		Tp:       map[string]map[string][]float64{},
		Paper: map[string]map[string][]float64{
			"ResNet-50": {
				"TF-PS": {900, 1_800, 3_400, 5_800}, "Horovod": {1_100, 2_100, 4_100, 7_600},
				"Parallax": {1_000, 2_000, 3_900, 7_600}},
			"Inception-v3": {
				"TF-PS": {700, 1_300, 2_100, 3_800}, "Horovod": {800, 1_500, 2_900, 5_900},
				"Parallax": {800, 1_500, 2_900, 5_800}},
			"LM": {
				"TF-PS": {68_600, 118_000, 133_000, 98_900}, "Horovod": {61_800, 47_200, 46_500, 45_500},
				"Parallax": {83_300, 158_000, 253_000, 274_000}},
			"NMT": {
				"TF-PS": {33_000, 60_100, 103_000, 102_000}, "Horovod": {37_500, 47_300, 59_300, 68_300},
				"Parallax": {39_300, 72_100, 132_000, 204_000}},
		},
	}
	frameworks := []struct {
		name string
		arch core.Arch
	}{
		{"TF-PS", core.ArchNaivePS},
		{"Horovod", core.ArchAR},
		{"Parallax", core.ArchHybrid},
	}
	for _, spec := range models.PaperModels() {
		out.Tp[spec.Name] = map[string][]float64{}
		for _, fw := range frameworks {
			var series []float64
			for _, n := range out.Machines {
				p := bestPartitions(spec)
				if p > 1 && p > 16*n {
					p = 16 * n // smaller clusters want fewer partitions
				}
				series = append(series, env.run(spec, fw.arch, n, env.GPUs, p).Throughput)
			}
			out.Tp[spec.Name][fw.name] = series
		}
	}
	return out
}

// Render formats the result.
func (r Figure8Result) Render() string {
	headers := []string{"Model", "Framework"}
	for _, n := range r.Machines {
		headers = append(headers, fmt.Sprintf("%dm", n))
	}
	headers = append(headers, "paper@8m")
	t := metrics.NewTable("Figure 8: throughput vs machines (6 GPUs each)", headers...)
	for _, model := range []string{"ResNet-50", "Inception-v3", "LM", "NMT"} {
		for _, fw := range []string{"TF-PS", "Horovod", "Parallax"} {
			row := []string{model, fw}
			for _, v := range r.Tp[model][fw] {
				row = append(row, humanize(v))
			}
			row = append(row, humanize(r.Paper[model][fw][3]))
			t.AddRow(row...)
		}
	}
	return t.String()
}

// ---------------------------------------------------------------- Fig. 9

// Figure9Result reproduces Figure 9: Parallax's normalized throughput
// (relative to 1 GPU) at 1, 6, 12, 24 and 48 GPUs, with the TF-PS and
// Horovod 48-GPU values from the figure's caption for comparison.
type Figure9Result struct {
	GPUs       []int
	Normalized map[string][]float64 // model -> series (Parallax)
	At48       map[string]map[string]float64
	Paper48    map[string]map[string]float64
}

// Figure9 runs the sweep. Cluster shapes: 1 GPU = 1×1; 6 = 1×6; 12 = 2×6;
// 24 = 4×6; 48 = 8×6, matching the paper's per-machine GPU count.
func Figure9(env Env) Figure9Result {
	shapes := []struct{ machines, gpus int }{
		{1, 1}, {1, 6}, {2, 6}, {4, 6}, {8, 6},
	}
	out := Figure9Result{
		GPUs:       []int{1, 6, 12, 24, 48},
		Normalized: map[string][]float64{},
		At48:       map[string]map[string]float64{},
		Paper48: map[string]map[string]float64{
			"ResNet-50":    {"Parallax": 39.8, "TF-PS": 30.4, "Horovod": 39.8},
			"Inception-v3": {"Parallax": 43.6, "TF-PS": 28.6, "Horovod": 44.4},
			"LM":           {"Parallax": 9.4, "TF-PS": 3.4, "Horovod": 1.6},
			"NMT":          {"Parallax": 18.4, "TF-PS": 9.1, "Horovod": 6.1},
		},
	}
	for _, spec := range models.PaperModels() {
		base := 0.0
		var series []float64
		for _, sh := range shapes {
			p := bestPartitions(spec)
			if p > 1 {
				if cap := 16 * sh.machines; p > cap {
					p = cap
				}
			}
			tp := env.run(spec, core.ArchHybrid, sh.machines, sh.gpus, p).Throughput
			if base == 0 {
				base = tp
			}
			series = append(series, metrics.NormalizedThroughput(tp, base))
		}
		out.Normalized[spec.Name] = series

		// Baselines at 48 GPUs normalized by their own 1-GPU throughput.
		out.At48[spec.Name] = map[string]float64{"Parallax": series[len(series)-1]}
		for _, fw := range []struct {
			name string
			arch core.Arch
		}{{"TF-PS", core.ArchNaivePS}, {"Horovod", core.ArchAR}} {
			p := bestPartitions(spec)
			one := env.run(spec, fw.arch, 1, 1, min(p, 16)).Throughput
			full := env.run(spec, fw.arch, 8, 6, p).Throughput
			out.At48[spec.Name][fw.name] = metrics.NormalizedThroughput(full, one)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Render formats the result.
func (r Figure9Result) Render() string {
	headers := []string{"Model"}
	for _, g := range r.GPUs {
		headers = append(headers, fmt.Sprintf("%dg", g))
	}
	headers = append(headers, "paper@48", "TF-PS@48", "Horovod@48")
	t := metrics.NewTable("Figure 9: normalized throughput (Parallax; baselines at 48 GPUs)", headers...)
	for _, model := range []string{"ResNet-50", "Inception-v3", "LM", "NMT"} {
		row := []string{model}
		for _, v := range r.Normalized[model] {
			row = append(row, fmt.Sprintf("%.1f", v))
		}
		row = append(row,
			fmt.Sprintf("%.1f", r.Paper48[model]["Parallax"]),
			fmt.Sprintf("%.1f (paper %.1f)", r.At48[model]["TF-PS"], r.Paper48[model]["TF-PS"]),
			fmt.Sprintf("%.1f (paper %.1f)", r.At48[model]["Horovod"], r.Paper48[model]["Horovod"]))
		t.AddRow(row...)
	}
	return t.String()
}
