package experiments

import (
	"fmt"

	"parallax/internal/core"
	"parallax/internal/engine"
	"parallax/internal/metrics"
	"parallax/internal/models"
)

// The ablations cover the design choices DESIGN.md calls out beyond the
// paper's own tables: the α threshold for treating hot sparse variables as
// dense (§3.1, last paragraph), local aggregation in isolation, and smart
// placement vs round-robin.

// AblationAlphaRow is one sparsity level of the threshold ablation.
type AblationAlphaRow struct {
	Alpha            float64
	AsPS, AsDense    float64 // hybrid throughput with variable on each path
	DenseWins        bool
	ThresholdPredict bool // what DefaultAlphaThreshold would choose
}

// AblationAlphaThreshold sweeps the LM's sparse-variable α at full paper
// scale (1.6 GB embedding tables — the crossover depends on the variable's
// size as well as α, since per-row update costs do not shrink with width)
// and compares handling the variables via PS against promoting them to
// AllReduce, validating the paper's "if the α value of a sparse variable
// is close to 1, then it may be helpful to handle the variable as a dense
// variable".
func AblationAlphaThreshold(env Env) []AblationAlphaRow {
	threshold := core.DefaultAlphaThreshold(env.HW)
	var out []AblationAlphaRow
	for _, alpha := range []float64{0.02, 0.05, 0.15, 0.3, 0.6, 0.9} {
		spec := models.LM()
		for i := range spec.Vars {
			if spec.Vars[i].Sparse {
				spec.Vars[i].Alpha = alpha
			}
		}
		asPS, err := engine.RunArch(spec, core.ArchHybrid, env.Machines, env.GPUs, 128, env.HW)
		if err != nil {
			panic(err)
		}
		// Force dense treatment by planning with a threshold below alpha.
		plan, err := core.BuildPlan(engine.PlanVars(spec), core.Options{
			Arch: core.ArchHybrid, NumMachines: env.Machines,
			SparsePartitions: 128, SmartPlacement: true,
			AlphaDenseThreshold: alpha, // >= alpha, so the variable promotes
		})
		if err != nil {
			panic(err)
		}
		asDense, err := engine.Run(engine.Config{
			Model: spec, Plan: plan, Machines: env.Machines, GPUsPerMachine: env.GPUs,
			HW: env.HW, LocalAggregation: true,
			Iterations: engine.DefaultIterations, Warmup: engine.DefaultWarmup,
		})
		if err != nil {
			panic(err)
		}
		out = append(out, AblationAlphaRow{
			Alpha:            alpha,
			AsPS:             asPS.Throughput,
			AsDense:          asDense.Throughput,
			DenseWins:        asDense.Throughput > asPS.Throughput,
			ThresholdPredict: alpha >= threshold,
		})
	}
	return out
}

// RenderAblationAlpha formats the threshold ablation.
func RenderAblationAlpha(rows []AblationAlphaRow, env Env) string {
	t := metrics.NewTable("Ablation: alpha threshold for dense promotion (constructed LM)",
		"alpha", "as PS", "as dense(AR)", "dense wins", "threshold predicts dense")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.2f", r.Alpha), humanize(r.AsPS), humanize(r.AsDense),
			fmt.Sprintf("%v", r.DenseWins), fmt.Sprintf("%v", r.ThresholdPredict))
	}
	t.AddNote("derived threshold = bw(RPC)/bw(NCCL) = %.2f", core.DefaultAlphaThreshold(env.HW))
	return t.String()
}

// AblationLocalAggRow compares OptPS with and without local aggregation.
type AblationLocalAggRow struct {
	Model              string
	WithLocal, Without float64
}

// AblationLocalAggregation isolates local aggregation's contribution
// (part of the NaivePS→OptPS gap in Table 4).
func AblationLocalAggregation(env Env) []AblationLocalAggRow {
	var out []AblationLocalAggRow
	for _, spec := range []*models.Spec{models.LM(), models.NMT()} {
		p := bestPartitions(spec)
		plan, err := core.BuildPlan(engine.PlanVars(spec), core.Options{
			Arch: core.ArchOptPS, NumMachines: env.Machines,
			SparsePartitions: p, SmartPlacement: true,
		})
		if err != nil {
			panic(err)
		}
		run := func(local bool) float64 {
			res, err := engine.Run(engine.Config{
				Model: spec, Plan: plan, Machines: env.Machines, GPUsPerMachine: env.GPUs,
				HW: env.HW, LocalAggregation: local,
				Iterations: engine.DefaultIterations, Warmup: engine.DefaultWarmup,
			})
			if err != nil {
				panic(err)
			}
			return res.Throughput
		}
		out = append(out, AblationLocalAggRow{
			Model: spec.Name, WithLocal: run(true), Without: run(false),
		})
	}
	return out
}

// RenderAblationLocalAgg formats the local-aggregation ablation.
func RenderAblationLocalAgg(rows []AblationLocalAggRow) string {
	t := metrics.NewTable("Ablation: local aggregation (OptPS placement, 48 GPUs)",
		"Model", "with local agg", "without", "gain")
	for _, r := range rows {
		t.AddRow(r.Model, humanize(r.WithLocal), humanize(r.Without),
			metrics.Ratio(r.WithLocal, r.Without))
	}
	return t.String()
}

// AblationPlacementRow compares smart vs round-robin placement.
type AblationPlacementRow struct {
	Model        string
	Smart, Naive float64
	SmartImbal   float64
	NaiveImbal   float64
}

// AblationPlacement isolates smart (size-balanced, update-colocated)
// placement against naive round-robin.
func AblationPlacement(env Env) []AblationPlacementRow {
	var out []AblationPlacementRow
	for _, spec := range []*models.Spec{models.LM(), models.NMT()} {
		p := bestPartitions(spec)
		run := func(smart bool) (float64, float64) {
			plan, err := core.BuildPlan(engine.PlanVars(spec), core.Options{
				Arch: core.ArchOptPS, NumMachines: env.Machines,
				SparsePartitions: p, SmartPlacement: smart,
			})
			if err != nil {
				panic(err)
			}
			res, err := engine.Run(engine.Config{
				Model: spec, Plan: plan, Machines: env.Machines, GPUsPerMachine: env.GPUs,
				HW: env.HW, LocalAggregation: true,
				Iterations: engine.DefaultIterations, Warmup: engine.DefaultWarmup,
			})
			if err != nil {
				panic(err)
			}
			return res.Throughput, plan.MaxServerImbalance()
		}
		st, si := run(true)
		nt, ni := run(false)
		out = append(out, AblationPlacementRow{
			Model: spec.Name, Smart: st, Naive: nt, SmartImbal: si, NaiveImbal: ni,
		})
	}
	return out
}

// RenderAblationPlacement formats the placement ablation.
func RenderAblationPlacement(rows []AblationPlacementRow) string {
	t := metrics.NewTable("Ablation: smart vs round-robin variable placement (48 GPUs)",
		"Model", "smart", "round-robin", "imbalance smart", "imbalance rr")
	for _, r := range rows {
		t.AddRow(r.Model, humanize(r.Smart), humanize(r.Naive),
			fmt.Sprintf("%.2f", r.SmartImbal), fmt.Sprintf("%.2f", r.NaiveImbal))
	}
	return t.String()
}
