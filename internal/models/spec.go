// Package models describes the four evaluation models of the paper —
// ResNet-50, Inception-v3, LM and NMT — at paper scale (variable counts,
// element counts, per-iteration sparsity α, compute times), plus small
// *real* trainable counterparts built on internal/graph for convergence
// experiments.
//
// Paper-scale models are specs, not executable graphs: an 813M-element
// embedding cannot (and need not) be allocated to measure communication
// behaviour. The discrete-event engine consumes these specs in accounting
// mode. Element counts follow Table 1; structural details (hidden sizes,
// vocabulary) follow §6.1.
package models

import (
	"fmt"
	"math"
)

// VarSpec describes one variable of a paper-scale model.
type VarSpec struct {
	Name string
	// Rows and Width give the variable shape [Rows, Width]; Elements =
	// Rows*Width. For rank-1 or rank-4 variables the flattened 2-D view is
	// used (partitioning acts on the first dimension).
	Rows  int64
	Width int64
	// Sparse marks variables accessed via gather (embedding tables); their
	// gradient is IndexedSlices-shaped.
	Sparse bool
	// Alpha is the per-worker, per-iteration element ratio of §2.2: the
	// average fraction of rows one worker's batch touches. 1 for dense.
	Alpha float64
	// PartitionTarget marks variables declared under a partitioner scope.
	PartitionTarget bool
	// Layer is the model layer the variable belongs to, 0-based from the
	// input; it controls when in the backward pass the variable's gradient
	// becomes ready (gradients arrive in reverse layer order).
	Layer int
}

// Elements returns Rows*Width.
func (v VarSpec) Elements() int64 { return v.Rows * v.Width }

// Bytes returns the variable's wire size at 4 bytes/element.
func (v VarSpec) Bytes() int64 { return v.Elements() * 4 }

// Spec is a paper-scale model description.
type Spec struct {
	Name string
	// Unit is the throughput unit: "images" or "words".
	Unit string
	// BatchPerGPU is examples per GPU per step (§6.1: 64 for the image
	// models, 128 for the NLP models).
	BatchPerGPU int
	// UnitsPerExample converts examples to throughput units: 1 for images;
	// average words per sentence for the NLP models.
	UnitsPerExample int
	// Layers is the depth used to spread compute and gradient-readiness
	// over the step (backpropagation emits gradients layer by layer).
	Layers int
	// FwdTime and BwdTime are per-GPU compute seconds per step, calibrated
	// so 1-GPU throughput lands near the paper's (see calibration notes in
	// internal/cluster/hardware.go).
	FwdTime, BwdTime float64
	Vars             []VarSpec
}

// DenseElements sums elements of dense variables.
func (s *Spec) DenseElements() int64 {
	var n int64
	for _, v := range s.Vars {
		if !v.Sparse {
			n += v.Elements()
		}
	}
	return n
}

// SparseElements sums elements of sparse variables.
func (s *Spec) SparseElements() int64 {
	var n int64
	for _, v := range s.Vars {
		if v.Sparse {
			n += v.Elements()
		}
	}
	return n
}

// AlphaModel computes the element-weighted α of §2.2.
func (s *Spec) AlphaModel() float64 {
	var num, den float64
	for _, v := range s.Vars {
		e := float64(v.Elements())
		num += v.Alpha * e
		den += e
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// UnitsPerStepPerGPU returns throughput units one GPU produces per step.
func (s *Spec) UnitsPerStepPerGPU() float64 {
	return float64(s.BatchPerGPU * s.UnitsPerExample)
}

// Validate checks spec invariants.
func (s *Spec) Validate() error {
	if len(s.Vars) == 0 {
		return fmt.Errorf("models: %s has no variables", s.Name)
	}
	for _, v := range s.Vars {
		if v.Rows <= 0 || v.Width <= 0 {
			return fmt.Errorf("models: %s/%s has empty shape", s.Name, v.Name)
		}
		if v.Alpha <= 0 || v.Alpha > 1 {
			return fmt.Errorf("models: %s/%s alpha %v out of (0,1]", s.Name, v.Name, v.Alpha)
		}
		if !v.Sparse && v.Alpha != 1 {
			return fmt.Errorf("models: %s/%s dense but alpha %v", s.Name, v.Name, v.Alpha)
		}
		if v.Layer < 0 || v.Layer >= s.Layers {
			return fmt.Errorf("models: %s/%s layer %d out of range", s.Name, v.Name, v.Layer)
		}
	}
	if s.FwdTime <= 0 || s.BwdTime <= 0 {
		return fmt.Errorf("models: %s has no compute time", s.Name)
	}
	return nil
}

// UnionAlpha returns the element ratio of the union of k independent
// batches each touching fraction alpha of rows: 1-(1-alpha)^k. Local
// aggregation ships the union of a machine's workers' rows, and the
// variable update touches the union of all workers' rows.
func UnionAlpha(alpha float64, k int) float64 {
	if k <= 1 {
		return alpha
	}
	return 1 - math.Pow(1-alpha, float64(k))
}
