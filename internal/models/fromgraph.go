package models

import (
	"parallax/internal/graph"
)

// SpecFromGraph derives a paper-scale-style Spec from a real computation
// graph, so the discrete-event engine (and the partition search built on
// it) can reason about a user's model. Variable shapes and gradient kinds
// come from the graph; per-variable α for sparse variables comes from the
// caller (measure it with data.MeasureAlpha or pass a conservative hint);
// compute time is estimated from parameter count (≈2 flops per parameter
// per example forward, twice that backward, on a ~12 TFLOPS GPU — TITAN Xp
// class).
func SpecFromGraph(g *graph.Graph, alpha map[string]float64, batchPerGPU int) *Spec {
	const gpuFlops = 12e12
	s := &Spec{
		Name: "user-model", Unit: "examples", BatchPerGPU: batchPerGPU, UnitsPerExample: 1,
	}
	var flops float64
	for i, v := range g.Variables() {
		width := int64(1)
		for _, d := range v.Shape[1:] {
			width *= int64(d)
		}
		sparse := g.GradKind(v) == graph.GradSparse
		a := 1.0
		if sparse {
			a = alpha[v.Name]
			if a <= 0 || a > 1 {
				a = 0.05
			}
			// Sparse lookups touch α of the table; dense layers touch all
			// of it.
			flops += 2 * a * float64(v.Elements()) * float64(batchPerGPU)
		} else {
			flops += 2 * float64(v.Elements()) * float64(batchPerGPU)
		}
		s.Vars = append(s.Vars, VarSpec{
			Name: v.Name, Rows: int64(v.Shape[0]), Width: width,
			Sparse: sparse, Alpha: a,
			PartitionTarget: v.PartitionScope >= 0,
			Layer:           i,
		})
	}
	s.Layers = len(s.Vars)
	s.FwdTime = flops / gpuFlops
	s.BwdTime = 2 * s.FwdTime
	// Keep compute times off zero for degenerate tiny graphs.
	if s.FwdTime < 1e-6 {
		s.FwdTime = 1e-6
		s.BwdTime = 2e-6
	}
	return s
}
