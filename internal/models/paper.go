package models

import "fmt"

// The four evaluation models, at paper scale (§6.1, Table 1).
//
// Compute-time calibration: FwdTime+BwdTime are set so single-GPU
// throughput matches the paper's measured values (Figure 9's normalized
// throughput divided into the 48-GPU absolute numbers):
//
//	ResNet-50:    7.6k img/s  / 39.8 ≈ 191 img/s  → 0.335 s/step @ batch 64
//	Inception-v3: 5.9k img/s  / 43.6 ≈ 135 img/s  → 0.473 s/step @ batch 64
//	LM:           274k w/s    /  9.4 ≈ 29.1k w/s  → 0.088 s/step @ 2560 w
//	NMT:          204k w/s    / 18.4 ≈ 11.1k w/s  → 0.300 s/step @ 3328 w
//
// The forward/backward split is the conventional 1:2.

// ResNet50 returns the ResNet-50 spec: a pure dense model. Variables
// follow the real bottleneck architecture (conv stage channel widths
// 64/128/256/512, expansion 4), totalling 25.5M elements — the paper's
// Table 1 reports 23.8M (likely excluding auxiliary parameters); the 7%
// difference does not affect any communication trend.
func ResNet50() *Spec {
	s := &Spec{
		Name: "ResNet-50", Unit: "images", BatchPerGPU: 64, UnitsPerExample: 1,
		FwdTime: 0.112, BwdTime: 0.223,
	}
	layer := 0
	addConv := func(name string, outCh, inElems int64) {
		s.Vars = append(s.Vars, VarSpec{
			Name: name, Rows: outCh, Width: inElems / outCh,
			Sparse: false, Alpha: 1, Layer: layer,
		})
	}
	addConv("conv1", 64, 9408)
	layer++
	type stage struct {
		blocks, mid, out int64
	}
	in := int64(64)
	for si, st := range []stage{{3, 64, 256}, {4, 128, 512}, {6, 256, 1024}, {3, 512, 2048}} {
		for b := int64(0); b < st.blocks; b++ {
			p := fmt.Sprintf("stage%d/block%d", si+2, b)
			addConv(p+"/conv1x1a", st.mid, in*st.mid)
			addConv(p+"/conv3x3", st.mid, st.mid*st.mid*9)
			addConv(p+"/conv1x1b", st.out, st.mid*st.out)
			if b == 0 {
				addConv(p+"/shortcut", st.out, in*st.out)
			}
			in = st.out
			layer++
		}
	}
	s.Vars = append(s.Vars, VarSpec{Name: "fc", Rows: 2048, Width: 1000, Alpha: 1, Layer: layer})
	s.Layers = layer + 1
	return s
}

// InceptionV3 returns the Inception-v3 spec: pure dense, 25.6M elements
// (Table 1), ~96 variables. The per-module element distribution is
// synthesized with geometric growth toward deeper modules, which matches
// the architecture's character closely enough for communication modelling.
func InceptionV3() *Spec {
	s := &Spec{
		Name: "Inception-v3", Unit: "images", BatchPerGPU: 64, UnitsPerExample: 1,
		FwdTime: 0.158, BwdTime: 0.315,
	}
	layer := 0
	// Stem: 6 small convs, ~1M elements.
	stem := []int64{864, 9216, 18432, 5120, 98304, 884736}
	for i, e := range stem {
		s.Vars = append(s.Vars, VarSpec{
			Name: fmt.Sprintf("stem/conv%d", i), Rows: 64, Width: (e + 63) / 64,
			Alpha: 1, Layer: layer,
		})
	}
	layer++
	// 11 inception modules, 8 branches each, sizes growing so the total
	// lands at ~22.5M.
	base := float64(52000)
	const growth = 1.30
	for m := 0; m < 11; m++ {
		for b := 0; b < 8; b++ {
			e := int64(base * (0.6 + 0.1*float64(b)))
			rows := int64(64 << uint(m/4))
			s.Vars = append(s.Vars, VarSpec{
				Name: fmt.Sprintf("mixed%d/branch%d", m, b), Rows: rows, Width: (e + rows - 1) / rows,
				Alpha: 1, Layer: layer,
			})
		}
		base *= growth
		layer++
	}
	s.Vars = append(s.Vars, VarSpec{Name: "fc", Rows: 2048, Width: 1000, Alpha: 1, Layer: layer})
	s.Layers = layer + 1
	return s
}

// LM returns the language-model spec (Jozefowicz et al. [18], §6.1): one
// LSTM layer with 2048 hidden units projected to a 512-d embedding,
// 800K-word vocabulary (One Billion Word). Sparse variables: the input
// embedding (800K×512) and the softmax weights (800K×512, touched only at
// sampled + batch rows), together 819M elements vs. Table 1's 813.3M.
// Dense: LSTM kernels + projection ≈ 9.4M.
//
// α values reproduce Table 1's α_model = 0.02: the input embedding touches
// the batch's unique tokens (~1.8K of 800K), the softmax weights touch
// batch + sampled-softmax rows (~10.7K of 800K):
// (0.00225·409.6M + 0.0134·409.6M + 1·9.4M) / 828.6M ≈ 0.02.
func LM() *Spec {
	return &Spec{
		Name: "LM", Unit: "words", BatchPerGPU: 128, UnitsPerExample: 20,
		FwdTime: 0.029, BwdTime: 0.059,
		Layers: 4,
		Vars: []VarSpec{
			{Name: "embedding", Rows: 800_000, Width: 512, Sparse: true, Alpha: 0.00225, PartitionTarget: true, Layer: 0},
			{Name: "lstm/kernel", Rows: 1024, Width: 8192, Alpha: 1, Layer: 1},
			{Name: "lstm/projection", Rows: 2048, Width: 512, Alpha: 1, Layer: 2},
			{Name: "softmax/weights", Rows: 800_000, Width: 512, Sparse: true, Alpha: 0.0134, PartitionTarget: true, Layer: 3},
		},
	}
}

// NMT returns the GNMT spec (Wu et al. [43], §6.1): 8-layer LSTMs of 1024
// units with a bidirectional encoder, WMT En-De vocabulary (~36.5K).
// Sparse: encoder and decoder embeddings, 2 × 36548×1024 = 74.9M (Table
// 1). Dense: LSTM stacks + attention + full-softmax output ≈ 94.1M.
// Per-variable sparse α = 0.21 reproduces Table 1's α_model = 0.65:
// (1·94.1M + 0.21·74.9M) / 169M ≈ 0.65.
func NMT() *Spec {
	s := &Spec{
		Name: "NMT", Unit: "words", BatchPerGPU: 128, UnitsPerExample: 26,
		FwdTime: 0.100, BwdTime: 0.200,
	}
	layer := 0
	s.Vars = append(s.Vars,
		VarSpec{Name: "encoder/embedding", Rows: 36548, Width: 1024, Sparse: true, Alpha: 0.21, PartitionTarget: true, Layer: layer},
		VarSpec{Name: "decoder/embedding", Rows: 36548, Width: 1024, Sparse: true, Alpha: 0.21, PartitionTarget: true, Layer: layer},
	)
	layer++
	// 7 LSTM layers of ~8.1M elements each (encoder+decoder stacks,
	// amortized) ≈ 56.7M.
	for i := 0; i < 7; i++ {
		s.Vars = append(s.Vars, VarSpec{
			Name: fmt.Sprintf("lstm%d/kernel", i), Rows: 2048, Width: 3950,
			Alpha: 1, Layer: layer,
		})
		layer++
	}
	// Full-softmax output projection: dense gradient (every logit column
	// participates), 36548×1024 = 37.4M.
	s.Vars = append(s.Vars, VarSpec{Name: "softmax/kernel", Rows: 1024, Width: 36548, Alpha: 1, Layer: layer})
	s.Layers = layer + 1
	return s
}

// PaperModels returns all four evaluation models in Table 1 order.
func PaperModels() []*Spec {
	return []*Spec{ResNet50(), InceptionV3(), LM(), NMT()}
}

// ConstructedLM returns the §6.6 variant: an LM constructed with "dense
// variables and vocabulary smaller than those of the original LM model to
// test under a wide range of α_model values". Sparse: two 50K×512 tables
// (51.2M elements); dense: a small LSTM (~2.0M elements), so α_model spans
// [0.04, 1.0] as in Table 6 (the dense floor is 2.0M/53.2M ≈ 0.038).
// alphaSparse is the per-variable sparse α; length (words per data
// instance) scales compute and the words/step accounting, exactly the
// paper's knob ("α_model is controlled by the number of words (length) in
// a data instance with the batch size fixed").
func ConstructedLM(alphaSparse float64, length int) *Spec {
	if alphaSparse <= 0 || alphaSparse > 1 {
		panic(fmt.Sprintf("models: bad alpha %v", alphaSparse))
	}
	return &Spec{
		Name: fmt.Sprintf("LM-len%d", length), Unit: "words", BatchPerGPU: 128,
		UnitsPerExample: length,
		// Compute scales with tokens processed per step relative to LM's
		// 20-word instances; the constructed model is smaller, so use a
		// third of LM's per-token compute.
		FwdTime: 0.010 * float64(length) / 20,
		BwdTime: 0.020 * float64(length) / 20,
		Layers:  4,
		Vars: []VarSpec{
			{Name: "embedding", Rows: 50_000, Width: 512, Sparse: true, Alpha: alphaSparse, PartitionTarget: true, Layer: 0},
			{Name: "lstm/kernel", Rows: 1024, Width: 1536, Alpha: 1, Layer: 1},
			{Name: "lstm/projection", Rows: 768, Width: 512, Alpha: 1, Layer: 2},
			{Name: "softmax/weights", Rows: 50_000, Width: 512, Sparse: true, Alpha: alphaSparse, PartitionTarget: true, Layer: 3},
		},
	}
}

// Table6Alpha converts a target α_model of the constructed LM into the
// per-variable sparse α that produces it:
// α_model = (α_s·S + D) / (S + D) with S sparse and D dense elements.
func Table6Alpha(alphaModel float64) float64 {
	spec := ConstructedLM(0.5, 1)
	s := float64(spec.SparseElements())
	d := float64(spec.DenseElements())
	as := (alphaModel*(s+d) - d) / s
	if as <= 0 {
		as = 1e-4
	}
	if as > 1 {
		as = 1
	}
	return as
}
