package models

import (
	"parallax/internal/graph"
	"parallax/internal/tensor"
)

// The tiny models are real, executable graphs with the same *structure* as
// the paper models (sparse embeddings feeding dense stacks) at laptop
// scale. They drive the convergence experiments (Figure 7 analogue) and
// the distributed-equivalence correctness tests.

// TinyLMConfig sizes a TinyLM.
type TinyLMConfig struct {
	Vocab, Dim, Hidden, Batch int
	Seed                      int64
}

// DefaultTinyLM returns a configuration that trains in well under a second.
func DefaultTinyLM() TinyLMConfig {
	return TinyLMConfig{Vocab: 500, Dim: 32, Hidden: 64, Batch: 32, Seed: 42}
}

// BuildTinyLM constructs an embedding→tanh(hidden)→softmax language model:
// one sparse partition-target variable ("embedding") plus three dense
// variables, structurally parallel to the paper's LM.
func BuildTinyLM(cfg TinyLMConfig) *graph.Graph {
	rng := tensor.NewRNG(cfg.Seed)
	g := graph.New()
	tokens := g.Input("tokens", graph.Int, cfg.Batch)
	labels := g.Input("labels", graph.Int, cfg.Batch)
	var emb *graph.Node
	g.InPartitioner(func() {
		emb = g.Variable("embedding", rng.RandN(0.1, cfg.Vocab, cfg.Dim))
	})
	w1 := g.Variable("lstm/kernel", rng.RandN(0.1, cfg.Dim, cfg.Hidden))
	b1 := g.Variable("lstm/bias", tensor.NewDense(cfg.Hidden))
	w2 := g.Variable("softmax/kernel", rng.RandN(0.1, cfg.Hidden, cfg.Vocab))

	h := g.Gather(emb, tokens)
	h = g.Tanh(g.AddBias(g.MatMul(h, w1), b1))
	g.SoftmaxCE(g.MatMul(h, w2), labels)
	return g
}

// TinyNMTConfig sizes a TinyNMT.
type TinyNMTConfig struct {
	SrcVocab, DstVocab, Dim, Hidden, Batch int
	Seed                                   int64
}

// DefaultTinyNMT returns a small translation-model configuration.
func DefaultTinyNMT() TinyNMTConfig {
	return TinyNMTConfig{SrcVocab: 400, DstVocab: 300, Dim: 24, Hidden: 48, Batch: 24, Seed: 43}
}

// BuildTinyNMT constructs a two-embedding model mirroring the paper's NMT
// example (Fig. 3): encoder and decoder embeddings declared inside one
// partitioner scope, concatenated and passed through a dense stack to a
// softmax over the destination vocabulary.
func BuildTinyNMT(cfg TinyNMTConfig) *graph.Graph {
	rng := tensor.NewRNG(cfg.Seed)
	g := graph.New()
	src := g.Input("en_texts", graph.Int, cfg.Batch)
	dst := g.Input("de_texts", graph.Int, cfg.Batch)
	labels := g.Input("labels", graph.Int, cfg.Batch)
	var embEnc, embDec *graph.Node
	g.InPartitioner(func() {
		embEnc = g.Variable("emb_enc", rng.RandN(0.1, cfg.SrcVocab, cfg.Dim))
		embDec = g.Variable("emb_dec", rng.RandN(0.1, cfg.DstVocab, cfg.Dim))
	})
	w1 := g.Variable("rnn/kernel", rng.RandN(0.1, 2*cfg.Dim, cfg.Hidden))
	b1 := g.Variable("rnn/bias", tensor.NewDense(cfg.Hidden))
	w2 := g.Variable("softmax/kernel", rng.RandN(0.1, cfg.Hidden, cfg.DstVocab))

	h := g.ConcatCols(g.Gather(embEnc, src), g.Gather(embDec, dst))
	h = g.Relu(g.AddBias(g.MatMul(h, w1), b1))
	g.SoftmaxCE(g.MatMul(h, w2), labels)
	return g
}

// TinyMLPConfig sizes a TinyMLP.
type TinyMLPConfig struct {
	Features, Hidden, Classes, Batch int
	Seed                             int64
}

// DefaultTinyMLP returns a small image-classifier configuration.
func DefaultTinyMLP() TinyMLPConfig {
	return TinyMLPConfig{Features: 64, Hidden: 96, Classes: 10, Batch: 32, Seed: 44}
}

// BuildTinyMLP constructs a dense-only classifier (the structural analogue
// of the paper's image models: no sparse variables at all).
func BuildTinyMLP(cfg TinyMLPConfig) *graph.Graph {
	rng := tensor.NewRNG(cfg.Seed)
	g := graph.New()
	x := g.Input("images", graph.Float, cfg.Batch, cfg.Features)
	labels := g.Input("labels", graph.Int, cfg.Batch)
	w1 := g.Variable("fc1/kernel", rng.RandN(0.15, cfg.Features, cfg.Hidden))
	b1 := g.Variable("fc1/bias", tensor.NewDense(cfg.Hidden))
	w2 := g.Variable("fc2/kernel", rng.RandN(0.15, cfg.Hidden, cfg.Classes))
	h := g.Relu(g.AddBias(g.MatMul(x, w1), b1))
	g.SoftmaxCE(g.MatMul(h, w2), labels)
	return g
}
