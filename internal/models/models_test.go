package models

import (
	"math"
	"testing"

	"parallax/internal/graph"
)

func TestPaperModelsValidate(t *testing.T) {
	for _, s := range PaperModels() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestTable1ElementCounts(t *testing.T) {
	// Element counts must land near Table 1's values.
	check := func(name string, got, paper int64, tolFrac float64) {
		diff := math.Abs(float64(got-paper)) / float64(paper)
		if diff > tolFrac {
			t.Errorf("%s: %d elements vs paper %d (%.1f%% off)", name, got, paper, diff*100)
		}
	}
	r := ResNet50()
	check("ResNet-50 dense", r.DenseElements(), 23_800_000, 0.10)
	if r.SparseElements() != 0 {
		t.Error("ResNet-50 must have no sparse variables")
	}
	i := InceptionV3()
	check("Inception-v3 dense", i.DenseElements(), 25_600_000, 0.10)
	lm := LM()
	check("LM dense", lm.DenseElements(), 9_400_000, 0.10)
	check("LM sparse", lm.SparseElements(), 813_300_000, 0.02)
	n := NMT()
	check("NMT dense", n.DenseElements(), 94_100_000, 0.05)
	check("NMT sparse", n.SparseElements(), 74_900_000, 0.01)
}

func TestTable1AlphaModel(t *testing.T) {
	if a := ResNet50().AlphaModel(); a != 1 {
		t.Errorf("ResNet-50 alpha = %v, want 1", a)
	}
	if a := LM().AlphaModel(); math.Abs(a-0.02) > 0.005 {
		t.Errorf("LM alpha_model = %v, want ~0.02", a)
	}
	if a := NMT().AlphaModel(); math.Abs(a-0.65) > 0.02 {
		t.Errorf("NMT alpha_model = %v, want ~0.65", a)
	}
}

func TestCalibratedSingleGPUThroughput(t *testing.T) {
	// Units/step / step-time must match the paper-derived 1-GPU targets.
	targets := map[string]float64{
		"ResNet-50":    191,
		"Inception-v3": 135,
		"LM":           29100,
		"NMT":          11100,
	}
	for _, s := range PaperModels() {
		got := s.UnitsPerStepPerGPU() / (s.FwdTime + s.BwdTime)
		want := targets[s.Name]
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s: 1-GPU throughput %v, want ~%v", s.Name, got, want)
		}
	}
}

func TestPartitionTargetsAreTheSparseVars(t *testing.T) {
	for _, s := range PaperModels() {
		for _, v := range s.Vars {
			if v.Sparse != v.PartitionTarget {
				t.Errorf("%s/%s: sparse=%v partitionTarget=%v", s.Name, v.Name, v.Sparse, v.PartitionTarget)
			}
		}
	}
}

func TestUnionAlpha(t *testing.T) {
	if got := UnionAlpha(0.5, 1); got != 0.5 {
		t.Fatalf("k=1: %v", got)
	}
	if got := UnionAlpha(0.5, 2); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("k=2: %v, want 0.75", got)
	}
	// Monotone in k, bounded by 1.
	prev := 0.0
	for k := 1; k <= 64; k *= 2 {
		a := UnionAlpha(0.02, k)
		if a <= prev || a > 1 {
			t.Fatalf("UnionAlpha(0.02,%d) = %v not increasing in (0,1]", k, a)
		}
		prev = a
	}
}

func TestConstructedLMAlphaSweepsModelAlpha(t *testing.T) {
	lo := ConstructedLM(0.001, 1)
	hi := ConstructedLM(0.9, 120)
	if !(lo.AlphaModel() < hi.AlphaModel()) {
		t.Fatalf("alpha_model not increasing: %v vs %v", lo.AlphaModel(), hi.AlphaModel())
	}
	if err := lo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTinyModelsBuildAndClassify(t *testing.T) {
	lm := BuildTinyLM(DefaultTinyLM())
	if err := lm.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(lm.SparseVariables()) != 1 || len(lm.DenseVariables()) != 3 {
		t.Fatalf("TinyLM sparse=%d dense=%d", len(lm.SparseVariables()), len(lm.DenseVariables()))
	}

	nmt := BuildTinyNMT(DefaultTinyNMT())
	if err := nmt.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(nmt.SparseVariables()) != 2 {
		t.Fatalf("TinyNMT sparse vars = %d, want 2", len(nmt.SparseVariables()))
	}
	// Both embeddings share one partitioner scope (Fig. 3).
	for _, v := range nmt.SparseVariables() {
		if v.PartitionScope != 0 {
			t.Fatalf("%s scope = %d, want 0", v.Name, v.PartitionScope)
		}
	}

	mlp := BuildTinyMLP(DefaultTinyMLP())
	if err := mlp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(mlp.SparseVariables()) != 0 {
		t.Fatal("TinyMLP must be dense-only")
	}
}

func TestTinyModelsExecutable(t *testing.T) {
	for _, g := range []*graph.Graph{
		BuildTinyLM(DefaultTinyLM()),
		BuildTinyNMT(DefaultTinyNMT()),
		BuildTinyMLP(DefaultTinyMLP()),
	} {
		if _, err := graph.NewExec(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSpecValidateErrors(t *testing.T) {
	base := func() *Spec {
		return &Spec{Name: "x", Unit: "u", BatchPerGPU: 1, UnitsPerExample: 1,
			FwdTime: 0.1, BwdTime: 0.1, Layers: 1,
			Vars: []VarSpec{{Name: "v", Rows: 2, Width: 2, Alpha: 1, Layer: 0}}}
	}
	if err := base().Validate(); err != nil {
		t.Fatal(err)
	}
	s := base()
	s.Vars = nil
	if s.Validate() == nil {
		t.Error("no vars accepted")
	}
	s = base()
	s.Vars[0].Rows = 0
	if s.Validate() == nil {
		t.Error("empty shape accepted")
	}
	s = base()
	s.Vars[0].Alpha = 0
	if s.Validate() == nil {
		t.Error("alpha 0 accepted")
	}
	s = base()
	s.Vars[0].Alpha = 0.5 // dense with alpha != 1
	if s.Validate() == nil {
		t.Error("dense alpha != 1 accepted")
	}
	s = base()
	s.Vars[0].Layer = 5
	if s.Validate() == nil {
		t.Error("layer out of range accepted")
	}
	s = base()
	s.FwdTime = 0
	if s.Validate() == nil {
		t.Error("zero compute accepted")
	}
}

func TestConstructedLMPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ConstructedLM(0, 1)
}

func TestTable6AlphaInverse(t *testing.T) {
	// Table6Alpha must invert AlphaModel over the valid range.
	for _, am := range []float64{0.1, 0.3, 0.6, 0.9} {
		as := Table6Alpha(am)
		spec := ConstructedLM(as, 10)
		if got := spec.AlphaModel(); math.Abs(got-am) > 0.01 {
			t.Errorf("alphaModel(%v) round trip = %v", am, got)
		}
	}
	// Below the dense floor it clamps to a tiny positive alpha.
	if as := Table6Alpha(0.001); as <= 0 || as > 0.01 {
		t.Errorf("sub-floor alpha = %v", as)
	}
	if as := Table6Alpha(2); as != 1 {
		t.Errorf("super-unit alpha = %v, want 1", as)
	}
}

func TestSpecFromGraphMirrorsGraph(t *testing.T) {
	g := BuildTinyLM(DefaultTinyLM())
	spec := SpecFromGraph(g, map[string]float64{"embedding": 0.2}, 32)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(spec.Vars) != len(g.Variables()) {
		t.Fatalf("vars %d vs %d", len(spec.Vars), len(g.Variables()))
	}
	byName := map[string]VarSpec{}
	for _, v := range spec.Vars {
		byName[v.Name] = v
	}
	if !byName["embedding"].Sparse || byName["embedding"].Alpha != 0.2 {
		t.Errorf("embedding spec wrong: %+v", byName["embedding"])
	}
	if byName["lstm/kernel"].Sparse {
		t.Error("dense var marked sparse")
	}
	if spec.FwdTime <= 0 || spec.BwdTime != 2*spec.FwdTime {
		t.Errorf("compute estimate wrong: %v %v", spec.FwdTime, spec.BwdTime)
	}
	// Missing alpha hint falls back to a sane default.
	spec2 := SpecFromGraph(g, nil, 32)
	for _, v := range spec2.Vars {
		if v.Sparse && (v.Alpha <= 0 || v.Alpha > 1) {
			t.Errorf("default alpha out of range: %+v", v)
		}
	}
}
