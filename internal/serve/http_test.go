package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, machines, gpus int) (*Service, *httptest.Server) {
	t.Helper()
	s, err := New(machines, gpus)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

func TestHTTPSubmitAndLifecycle(t *testing.T) {
	_, ts := newTestServer(t, 1, 1)

	// Partial spec: everything not given comes from the default
	// workload; machines/gpus shrink to the test cluster.
	resp, body := postJSON(t, ts.URL+"/jobs", map[string]any{
		"tenant": "acme",
		"spec":   map[string]any{"machines": 1, "gpus": 1, "vocab": 200, "batch": 8, "steps": 6, "partitions": 4},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.Tenant != "acme" || v.Namespace != "acme/"+v.ID {
		t.Fatalf("bad view: %+v", v)
	}
	if v.Spec.LR != 0.5 || v.Spec.Arch != "hybrid" {
		t.Fatalf("defaults not inherited: %+v", v.Spec)
	}

	// Poll GET /jobs/{id} to completion.
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		var jv View
		json.NewDecoder(r.Body).Decode(&jv)
		r.Body.Close()
		if jv.State.Terminal() {
			if jv.State != Succeeded || jv.FinalLossBits == "" || jv.StepsDone != 6 {
				t.Fatalf("terminal view: %+v", jv)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", jv)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// GET /jobs lists it.
	r, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []View
	json.NewDecoder(r.Body).Decode(&list)
	r.Body.Close()
	if len(list) != 1 || list[0].ID != v.ID {
		t.Fatalf("list: %+v", list)
	}
}

func TestHTTPRejectionCodes(t *testing.T) {
	_, ts := newTestServer(t, 1, 1)
	// Over capacity: 409.
	resp, body := postJSON(t, ts.URL+"/jobs", map[string]any{
		"spec": map[string]any{"machines": 4, "gpus": 4},
	})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("over-capacity: %d %s", resp.StatusCode, body)
	}
	// Invalid spec: 400.
	resp, body = postJSON(t, ts.URL+"/jobs", map[string]any{
		"spec": map[string]any{"machines": 1, "gpus": 1, "arch": "bogus"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec: %d %s", resp.StatusCode, body)
	}
	// Unknown job: 404.
	r, _ := http.Get(ts.URL + "/jobs/job-999999")
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d", r.StatusCode)
	}
	r.Body.Close()
}

func TestHTTPStepStreamFollowsToTerminal(t *testing.T) {
	_, ts := newTestServer(t, 1, 1)
	resp, body := postJSON(t, ts.URL+"/jobs", map[string]any{
		"spec": map[string]any{"machines": 1, "gpus": 1, "vocab": 200, "batch": 8, "steps": 8, "partitions": 4},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v View
	json.Unmarshal(body, &v)

	// Open the stream immediately: it must deliver all 8 steps as
	// NDJSON and close by itself when the job finishes.
	r, err := http.Get(ts.URL + "/jobs/" + v.ID + "/steps")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if ct := r.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	sc := bufio.NewScanner(r.Body)
	var events []StepEvent
	for sc.Scan() {
		var ev StepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 8 {
		t.Fatalf("streamed %d events, want 8", len(events))
	}
	for i, ev := range events {
		if ev.Step != i || ev.Loss <= 0 {
			t.Fatalf("event %d: %+v", i, ev)
		}
	}
}

func TestHTTPCheckpointCancelMetricsHealthVersion(t *testing.T) {
	_, ts := newTestServer(t, 1, 2)
	resp, body := postJSON(t, ts.URL+"/jobs", map[string]any{
		"tenant": "acme",
		"spec":   map[string]any{"machines": 1, "gpus": 1, "vocab": 200, "batch": 8, "steps": 100000, "partitions": 4},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v View
	json.Unmarshal(body, &v)

	// Checkpoint the running job.
	dir := t.TempDir()
	deadline := time.Now().Add(30 * time.Second)
	var ckptResp *http.Response
	var ckptBody []byte
	for {
		ckptResp, ckptBody = postJSON(t, ts.URL+"/jobs/"+v.ID+"/checkpoint", map[string]any{"dir": dir})
		if ckptResp.StatusCode == http.StatusOK || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ckptResp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", ckptResp.StatusCode, ckptBody)
	}
	var ck struct {
		Dir  string `json:"dir"`
		Step int    `json:"step"`
	}
	json.Unmarshal(ckptBody, &ck)
	if ck.Dir != dir || ck.Step < 1 {
		t.Fatalf("checkpoint response: %+v", ck)
	}

	// Metrics expose the running job's series.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mtext, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(mr.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("metrics content type %q", mr.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(mtext), fmt.Sprintf(`parallax_steps_total{job=%q,tenant="acme"}`, v.ID)) {
		t.Errorf("metrics missing job series:\n%s", mtext)
	}

	// Cancel it over HTTP.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+v.ID, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", dr.StatusCode)
	}
	for {
		r, _ := http.Get(ts.URL + "/jobs/" + v.ID)
		var jv View
		json.NewDecoder(r.Body).Decode(&jv)
		r.Body.Close()
		if jv.State.Terminal() {
			if jv.State != Cancelled {
				t.Fatalf("after cancel: %s", jv.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancel never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Liveness and identity.
	hr, _ := http.Get(ts.URL + "/healthz")
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", hr.StatusCode)
	}
	hr.Body.Close()
	vr, _ := http.Get(ts.URL + "/version")
	var info struct {
		Version string `json:"version"`
	}
	json.NewDecoder(vr.Body).Decode(&info)
	vr.Body.Close()
	if info.Version == "" {
		t.Error("version endpoint returned no version")
	}
}
