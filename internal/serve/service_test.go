package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"parallax"
	"parallax/internal/jobspec"
)

// tinySpec is a fast 1×1 job so scheduler tests stay quick.
func tinySpec(steps int) jobspec.Spec {
	s := jobspec.Default()
	s.Machines, s.GPUs = 1, 1
	s.Vocab, s.Batch, s.Steps = 200, 8, steps
	s.Partitions = 4
	return s
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", j.ID, j.State(), want)
}

func waitTerminal(t *testing.T, j *Job) State {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s := j.State(); s.Terminal() {
			return s
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never terminal (state %s)", j.ID, j.State())
	return ""
}

func TestAdmissionRejectsOverCapacity(t *testing.T) {
	s, err := New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(5)
	spec.Machines, spec.GPUs = 4, 4 // 16 GPUs on a 4-GPU cluster
	if _, err := s.Submit("acme", spec); !errors.Is(err, ErrRejected) {
		t.Fatalf("over-capacity submit: got %v, want ErrRejected", err)
	}
	spec = tinySpec(5)
	spec.Machines, spec.GPUs = 3, 1 // 3 machines on a 2-machine cluster
	if _, err := s.Submit("acme", spec); !errors.Is(err, ErrRejected) {
		t.Fatalf("over-machines submit: got %v, want ErrRejected", err)
	}
	spec = tinySpec(5)
	spec.Arch = "bogus"
	if _, err := s.Submit("acme", spec); err == nil || errors.Is(err, ErrRejected) {
		t.Fatalf("invalid spec: got %v, want plain validation error", err)
	}
}

func TestQueueDrainsAsCapacityFrees(t *testing.T) {
	s, err := New(1, 1) // 1 GPU: strictly serial
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Submit("acme", tinySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit("acme", tinySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	// b is admissible (fits total capacity) so it queues behind a.
	waitState(t, a, Running)
	if st := b.State(); st != Queued {
		t.Fatalf("second job should queue while first runs, got %s", st)
	}
	if got := waitTerminal(t, a); got != Succeeded {
		t.Fatalf("first job: %s (%s)", got, a.View().Error)
	}
	if got := waitTerminal(t, b); got != Succeeded {
		t.Fatalf("queued job never drained: %s (%s)", got, b.View().Error)
	}
	if free := 1; s.inv.FreeGPUs() != free {
		t.Fatalf("inventory leaked: free=%d want %d", s.inv.FreeGPUs(), free)
	}
}

func TestFairShareOrdersTenants(t *testing.T) {
	s, err := New(1, 2) // two 1-GPU slots
	if err != nil {
		t.Fatal(err)
	}
	// acme fills both slots with long jobs, then queues a third; zeta
	// queues one after it. When a slot frees, acme still holds the
	// other slot while zeta holds nothing — fair share starts zeta's
	// job before acme's third despite its later arrival.
	long := tinySpec(100000)
	a1, _ := s.Submit("acme", long)
	a2, _ := s.Submit("acme", long)
	a3, _ := s.Submit("acme", long)
	z1, _ := s.Submit("zeta", long)
	for _, j := range []*Job{a1, a2, a3, z1} {
		if j == nil {
			t.Fatal("submit failed")
		}
	}
	waitState(t, a1, Running)
	waitState(t, a2, Running)
	if a3.State() != Queued || z1.State() != Queued {
		t.Fatalf("a3=%s z1=%s, want both queued", a3.State(), z1.State())
	}
	if err := s.Cancel(a1.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, a1)
	// The freed slot must go to zeta, not to acme's earlier-queued a3.
	waitState(t, z1, Running)
	if st := a3.State(); st != Queued {
		t.Fatalf("fair-share violated: acme's third job started (%s) before zeta's", st)
	}
	// Now acme and zeta hold one slot each; the next free slot goes to
	// a3 (only candidate).
	if err := s.Cancel(z1.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, z1)
	waitState(t, a3, Running)
	for _, j := range []*Job{a2, a3} {
		if err := s.Cancel(j.ID); err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
	}
}

func TestConcurrentTenantsIsolatedAndBitIdentical(t *testing.T) {
	// Two same-shaped jobs with identical variable names train
	// concurrently on one fleet under different tenants; a third run of
	// the same spec via direct parallax.Open is the reference. All
	// three must land on identical final-loss bits — proof both that
	// namespaces kept the tenants' same-named state disjoint and that
	// resident serving adds no numeric drift.
	s, err := New(2, 4) // room for both 2x2 jobs at once
	if err != nil {
		t.Fatal(err)
	}
	spec := jobspec.Default()
	spec.Vocab, spec.Batch, spec.Steps = 500, 16, 12
	spec.Partitions = 8

	a, err := s.Submit("acme", spec)
	if err != nil {
		t.Fatal(err)
	}
	z, err := s.Submit("zeta", spec)
	if err != nil {
		t.Fatal(err)
	}
	// Both jobs run at once on the shared fleet: every machine's
	// resident server hosts two namespaces while they overlap.
	// Registration happens inside Open, after the state flips to
	// running, so poll for the overlap window.
	sawBoth := false
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		if len(s.Fleet().Namespaces(0)) == 2 {
			sawBoth = true
			break
		}
		if a.State().Terminal() || z.State().Terminal() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !sawBoth {
		t.Fatal("never observed both tenants' namespaces on machine 0 concurrently")
	}
	if st := waitTerminal(t, a); st != Succeeded {
		t.Fatalf("job a: %s (%s)", st, a.View().Error)
	}
	if st := waitTerminal(t, z); st != Succeeded {
		t.Fatalf("job z: %s (%s)", st, z.View().Error)
	}

	// Reference: the identical spec, straight through the library.
	ref := directBits(t, spec)
	av, zv := a.View(), z.View()
	if av.FinalLossBits != ref || zv.FinalLossBits != ref {
		t.Errorf("final loss bits diverged: a=%s z=%s direct=%s",
			av.FinalLossBits, zv.FinalLossBits, ref)
	}
	// Namespaces unregistered on completion: the fleet is clean.
	for m := 0; m < 2; m++ {
		if ns := s.Fleet().Namespaces(m); len(ns) != 0 {
			t.Errorf("machine %d still hosts namespaces after completion: %v", m, ns)
		}
	}
}

func directBits(t *testing.T, spec jobspec.Spec) string {
	t.Helper()
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := parallax.Open(context.Background(), spec.Graph(), spec.Resources(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var stats parallax.LoopStats
	for st, err := range sess.Steps(context.Background(), spec.Dataset()) {
		if err != nil {
			t.Fatal(err)
		}
		stats.Observe(st)
		if st.Step >= spec.Steps-1 {
			break
		}
	}
	return fmt.Sprintf("%016x", math.Float64bits(stats.LastLoss))
}

func TestCancelQueuedAndRunning(t *testing.T) {
	s, err := New(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	long := tinySpec(100000) // effectively endless
	a, err := s.Submit("acme", long)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit("acme", tinySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, Running)
	// Cancel the queued job: immediate, no resources were held.
	if err := s.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	if st := b.State(); st != Cancelled {
		t.Fatalf("queued cancel: %s", st)
	}
	// Cancel the running job: drains at the next step boundary and
	// frees the GPU.
	if err := s.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, a); st != Cancelled {
		t.Fatalf("running cancel: %s", st)
	}
	if s.inv.FreeGPUs() != 1 {
		t.Fatalf("cancel leaked inventory: free=%d", s.inv.FreeGPUs())
	}
	if err := s.Cancel(a.ID); err == nil {
		t.Error("cancelling a terminal job should error")
	}
	if err := s.Cancel("job-999999"); err == nil {
		t.Error("cancelling an unknown job should error")
	}
}

func TestCheckpointAndStepHistory(t *testing.T) {
	s, err := New(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(40)
	j, err := s.Submit("acme", spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Running)
	dir := t.TempDir()
	step, err := s.Checkpoint(context.Background(), j.ID, dir)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if step < 1 || step > spec.Steps {
		t.Errorf("checkpoint step %d out of range", step)
	}
	if st := waitTerminal(t, j); st != Succeeded {
		t.Fatalf("job: %s (%s)", st, j.View().Error)
	}
	// The saved state resumes through the library and finishes the
	// remaining steps without error.
	opts, _ := spec.Options()
	sess, err := parallax.OpenFromCheckpoint(context.Background(), dir, spec.Graph(), spec.Resources(), opts...)
	if err != nil {
		t.Fatalf("resume from service checkpoint: %v", err)
	}
	if got := sess.StepCount(); got != step {
		t.Errorf("resumed at step %d, checkpoint said %d", got, step)
	}
	sess.Close()

	// Step history is complete and ordered.
	events, terminal := j.waitSteps(context.Background(), 0)
	if !terminal || len(events) != spec.Steps {
		t.Fatalf("history: %d events terminal=%v, want %d", len(events), terminal, spec.Steps)
	}
	for i, ev := range events {
		if ev.Step != i {
			t.Fatalf("history out of order at %d: %+v", i, ev)
		}
	}
	// Checkpointing a finished job fails cleanly.
	if _, err := s.Checkpoint(context.Background(), j.ID, dir); err == nil {
		t.Error("checkpoint on terminal job should error")
	}
}

func TestMetricsExposePerJobSeries(t *testing.T) {
	s, err := New(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit("acme", tinySpec(5))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	text := s.MetricsText()
	for _, want := range []string{
		"# TYPE parallax_steps_total counter",
		fmt.Sprintf(`parallax_steps_total{job=%q,tenant="acme"} 5`, j.ID),
		"# TYPE parallax_step_seconds histogram",
		fmt.Sprintf(`parallax_step_seconds_count{job=%q,tenant="acme"} 5`, j.ID),
		`parallax_jobs_done_total{state="succeeded",tenant="acme"} 1`,
		"parallax_gpus_capacity 1",
		"parallax_gpus_free 1",
	} {
		if !containsLine(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func containsLine(text, line string) bool {
	for len(text) > 0 {
		i := 0
		for i < len(text) && text[i] != '\n' {
			i++
		}
		if text[:i] == line {
			return true
		}
		if i == len(text) {
			break
		}
		text = text[i+1:]
	}
	return false
}

func TestShutdownDrainsEverything(t *testing.T) {
	s, err := New(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Submit("acme", tinySpec(100000))
	b, _ := s.Submit("acme", tinySpec(3))
	waitState(t, a, Running)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if st := a.State(); st != Cancelled {
		t.Errorf("running job after shutdown: %s", st)
	}
	if st := b.State(); st != Cancelled {
		t.Errorf("queued job after shutdown: %s", st)
	}
	if _, err := s.Submit("acme", tinySpec(3)); err == nil {
		t.Error("submit after shutdown should fail")
	}
}
