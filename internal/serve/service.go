package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"parallax"
	"parallax/internal/cluster"
	"parallax/internal/jobspec"
)

// ErrRejected marks admission failures: the job can never run on this
// cluster (HTTP 409 at the API). Validation failures are plain errors
// (HTTP 400).
var ErrRejected = errors.New("admission rejected")

// Service hosts many training jobs on one resident PS fleet. One
// Service per daemon; all methods are safe for concurrent use.
type Service struct {
	fleet *parallax.PSFleet
	inv   *cluster.Inventory
	met   *serviceMetrics

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // registry in admission order, for GET /jobs
	queue  []*Job   // admitted, waiting for free share
	alloc  map[string]int
	seq    int
	closed bool
	wg     sync.WaitGroup
}

// New creates a service for a cluster of machines × gpusPerMachine:
// that shape bounds every admission decision, and the resident fleet
// spans the machines.
func New(machines, gpusPerMachine int) (*Service, error) {
	inv, err := cluster.NewInventory(machines, gpusPerMachine)
	if err != nil {
		return nil, err
	}
	fleet, err := parallax.NewPSFleet(machines)
	if err != nil {
		return nil, err
	}
	s := &Service{
		fleet: fleet, inv: inv, met: newServiceMetrics(),
		jobs: map[string]*Job{}, alloc: map[string]int{},
	}
	s.met.capacityGPUs.Set(float64(inv.CapacityGPUs()))
	s.met.freeGPUs.Set(float64(inv.FreeGPUs()))
	return s, nil
}

// Fleet exposes the resident fleet (observability: namespaces per
// machine).
func (s *Service) Fleet() *parallax.PSFleet { return s.fleet }

// Submit validates and admits one job for tenant. A spec that can
// never fit the cluster returns ErrRejected; an admissible one is
// queued (and started immediately when the free share covers it).
func (s *Service) Submit(tenant string, spec jobspec.Spec) (*Job, error) {
	if tenant == "" {
		tenant = "default"
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	d := cluster.DemandOf(spec.Machines, spec.GPUs)
	if err := s.inv.Admits(d); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("service is shutting down")
	}
	s.seq++
	j := newJob(fmt.Sprintf("job-%06d", s.seq), tenant, spec, s.seq)
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.queue = append(s.queue, j)
	s.met.submitted.Inc(j.Tenant)
	s.scheduleLocked()
	return j, nil
}

// Job looks up a job by ID (terminal jobs included).
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Views snapshots every job in admission order.
func (s *Service) Views() []View {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	views := make([]View, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	return views
}

// Cancel stops a job: a queued job leaves the queue immediately, a
// running one is context-cancelled and drains at the next step
// boundary. Cancelling a terminal job is an error.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("no such job %s", id)
	}
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.mu.Unlock()
			j.finish(Cancelled, nil, 0, 0)
			s.met.jobsDone.Inc(string(Cancelled), j.Tenant)
			return nil
		}
	}
	s.mu.Unlock()

	j.mu.Lock()
	cancel, state := j.cancel, j.state
	j.mu.Unlock()
	if state.Terminal() {
		return fmt.Errorf("job %s already %s", id, state)
	}
	if cancel != nil {
		cancel()
	}
	return nil
}

// Checkpoint saves a running job's session under dir, between steps.
func (s *Service) Checkpoint(ctx context.Context, id, dir string) (int, error) {
	j, ok := s.Job(id)
	if !ok {
		return 0, fmt.Errorf("no such job %s", id)
	}
	if dir == "" {
		return 0, errors.New("checkpoint dir required")
	}
	return j.requestCheckpoint(ctx, dir)
}

// MetricsText renders the Prometheus exposition.
func (s *Service) MetricsText() string {
	s.updateGauges()
	return s.met.reg.Text()
}

// Shutdown cancels every job and waits for the runners to drain.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	queued := append([]*Job(nil), s.queue...)
	s.queue = nil
	var cancels []context.CancelFunc
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == Running && j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	for _, j := range queued {
		j.finish(Cancelled, nil, 0, 0)
		s.met.jobsDone.Inc(string(Cancelled), j.Tenant)
	}
	for _, c := range cancels {
		c()
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// scheduleLocked starts as many queued jobs as the free share covers.
// Order: the tenant with the least GPUs currently allocated goes
// first, FIFO within a tenant; a job that does not fit is skipped so
// smaller jobs may backfill behind it. Caller holds s.mu.
func (s *Service) scheduleLocked() {
	if s.closed {
		return
	}
	for {
		cands := append([]*Job(nil), s.queue...)
		sort.SliceStable(cands, func(a, b int) bool {
			aa, ba := s.alloc[cands[a].Tenant], s.alloc[cands[b].Tenant]
			if aa != ba {
				return aa < ba
			}
			return cands[a].seq < cands[b].seq
		})
		started := false
		for _, j := range cands {
			if !s.inv.TryAcquire(j.Demand) {
				continue
			}
			for i, q := range s.queue {
				if q == j {
					s.queue = append(s.queue[:i], s.queue[i+1:]...)
					break
				}
			}
			s.alloc[j.Tenant] += j.Demand.GPUs
			ctx, cancel := context.WithCancel(context.Background())
			j.setRunning(cancel)
			s.wg.Add(1)
			go s.run(ctx, j)
			started = true
			break // re-sort: allocations changed
		}
		if !started {
			return
		}
	}
}

// jobDone releases a finished job's resources and reschedules.
func (s *Service) jobDone(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inv.Release(j.Demand)
	s.alloc[j.Tenant] -= j.Demand.GPUs
	if s.alloc[j.Tenant] <= 0 {
		delete(s.alloc, j.Tenant)
	}
	s.scheduleLocked()
}

// run drives one job's Session to completion on its own goroutine.
// Panics are confined to the job: the service and its other tenants
// keep running.
func (s *Service) run(ctx context.Context, j *Job) {
	defer s.wg.Done()
	var finished bool
	defer func() {
		if r := recover(); r != nil && !finished {
			j.finish(Failed, fmt.Errorf("runner panic: %v", r), 0, 0)
			s.met.jobsDone.Inc(string(Failed), j.Tenant)
		}
		s.drainCheckpoints(j)
		s.jobDone(j)
	}()

	spec := j.Spec
	opts, err := spec.Options()
	if err != nil {
		finished = true
		j.finish(Failed, err, 0, 0)
		s.met.jobsDone.Inc(string(Failed), j.Tenant)
		return
	}
	// The job joins the resident fleet under its own namespace: its
	// variables live on the shared per-machine servers, isolated from
	// every other tenant's same-named variables.
	opts = append(opts, parallax.WithResidentPS(s.fleet, j.Namespace()))
	sess, err := parallax.Open(ctx, spec.Graph(), spec.Resources(), opts...)
	if err != nil {
		finished = true
		j.finish(Failed, fmt.Errorf("open: %w", err), 0, 0)
		s.met.jobsDone.Inc(string(Failed), j.Tenant)
		return
	}
	defer sess.Close()

	ds := spec.Dataset()
	var stats parallax.LoopStats
	var runErr error
	cancelled := false
	for st, err := range sess.Steps(ctx, ds) {
		if err != nil {
			if errors.Is(err, context.Canceled) {
				cancelled = true
			} else {
				runErr = err
			}
			break
		}
		stats.Observe(st)
		s.met.observeStep(j, st)
		s.met.observeSession(j, sess.Epoch(), sess.Recoveries())
		j.observe(stepEvent(st), sess.StepCount())
		s.answerCheckpoints(j, sess)
		if st.Step >= spec.Steps-1 {
			break
		}
	}

	finished = true
	bits := math.Float64bits(stats.LastLoss)
	switch {
	case runErr != nil:
		j.finish(Failed, runErr, 0, 0)
		s.met.jobsDone.Inc(string(Failed), j.Tenant)
	case cancelled:
		j.finish(Cancelled, nil, stats.LastLoss, bits)
		s.met.jobsDone.Inc(string(Cancelled), j.Tenant)
	default:
		j.finish(Succeeded, nil, stats.LastLoss, bits)
		s.met.jobsDone.Inc(string(Succeeded), j.Tenant)
	}
}

// answerCheckpoints serves any parked checkpoint requests at a step
// boundary (Save must run on the goroutine driving the session).
func (s *Service) answerCheckpoints(j *Job, sess *parallax.Session) {
	for {
		select {
		case req := <-j.ckpt:
			err := sess.Save(req.dir)
			if err == nil {
				s.met.checkpoints.Inc(j.ID, j.Tenant)
			}
			req.done <- checkpointResp{step: sess.StepCount(), err: err}
		default:
			return
		}
	}
}

// drainCheckpoints fails requests that arrived too late to be served.
func (s *Service) drainCheckpoints(j *Job) {
	for {
		select {
		case req := <-j.ckpt:
			req.done <- checkpointResp{err: fmt.Errorf("job %s finished before the checkpoint ran", j.ID)}
		default:
			return
		}
	}
}

// updateGauges refreshes the whole-service gauges from current state.
func (s *Service) updateGauges() {
	s.mu.Lock()
	queued, running := 0, 0
	for _, j := range s.jobs {
		switch j.State() {
		case Queued:
			queued++
		case Running:
			running++
		}
	}
	s.mu.Unlock()
	s.met.jobsQueued.Set(float64(queued))
	s.met.jobsRunning.Set(float64(running))
	s.met.freeGPUs.Set(float64(s.inv.FreeGPUs()))
}

func stepEvent(st parallax.StepStats) StepEvent {
	return StepEvent{
		Step:             st.Step,
		Loss:             st.Loss,
		StepMillis:       float64(st.StepTime.Microseconds()) / 1000,
		BytesPushed:      st.BytesPushed,
		WireSentBytes:    st.WireSentBytes,
		WireRecvBytes:    st.WireRecvBytes,
		Overlap:          st.OverlapFraction(),
		CompressionRatio: st.CompressionRatio(),
	}
}
