package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"parallax/internal/buildinfo"
	"parallax/internal/jobspec"
)

// Handler builds the daemon's HTTP API on s:
//
//	POST   /jobs                  submit {tenant, spec} → job view (202)
//	GET    /jobs                  list all jobs
//	GET    /jobs/{id}             one job (incl. final_loss_bits when terminal)
//	GET    /jobs/{id}/steps       NDJSON step stream, follows until terminal
//	POST   /jobs/{id}/checkpoint  {dir} → save between steps
//	DELETE /jobs/{id}             cancel
//	GET    /metrics               Prometheus text exposition
//	GET    /healthz               liveness
//	GET    /version               build identity
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Tenant string       `json:"tenant"`
			Spec   jobspec.Spec `json:"spec"`
		}
		// Partial specs inherit the standard workload's defaults, so a
		// body like {"spec":{"steps":20}} is a complete job.
		req.Spec = jobspec.Default()
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		j, err := s.Submit(req.Tenant, req.Spec)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrRejected) {
				code = http.StatusConflict
			}
			httpError(w, code, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.View())
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Views())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no such job %s", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, j.View())
	})
	mux.HandleFunc("GET /jobs/{id}/steps", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no such job %s", r.PathValue("id")))
			return
		}
		streamSteps(w, r, j)
	})
	mux.HandleFunc("POST /jobs/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Dir string `json:"dir"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		step, err := s.Checkpoint(r.Context(), r.PathValue("id"), req.Dir)
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"dir": req.Dir, "step": step})
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Cancel(r.PathValue("id")); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"cancelled": r.PathValue("id")})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, s.MetricsText())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, buildinfo.Get())
	})
	return mux
}

// streamSteps writes the job's step history as NDJSON and follows new
// steps until the job is terminal or the client disconnects. One JSON
// object per line, flushed per batch, so `curl -N` tails a live job.
func streamSteps(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cursor := 0
	for {
		events, terminal := j.waitSteps(r.Context(), cursor)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		cursor += len(events)
		if flusher != nil {
			flusher.Flush()
		}
		if terminal || r.Context().Err() != nil {
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"error": err.Error()})
}
