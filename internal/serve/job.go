// Package serve is the multi-tenant training service: a long-running
// daemon hosting many concurrent Sessions on one resident parameter-
// server fleet (DESIGN.md §13). Jobs arrive as jobspec.Spec documents,
// pass admission control against the cluster inventory, train on their
// own goroutine under their own PS namespace, and expose their step
// stream, checkpoints, and Prometheus metrics over HTTP.
//
// This turns the paper's per-job runtime into a service: the
// one-server-per-machine layout (§4.2) becomes a persistent fleet that
// outlives any job, and the per-job graph transformation runs at
// admission time instead of process start.
package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"parallax/internal/cluster"
	"parallax/internal/jobspec"
)

// State is a job lifecycle state.
type State string

const (
	// Queued: admitted (fits total capacity) but waiting for free share.
	Queued State = "queued"
	// Running: resources acquired, the Session is training.
	Running State = "running"
	// Succeeded: reached its step horizon and closed cleanly.
	Succeeded State = "succeeded"
	// Failed: the Session returned an error or the runner panicked.
	Failed State = "failed"
	// Cancelled: stopped by DELETE /jobs/{id} or daemon shutdown.
	Cancelled State = "cancelled"
)

// Terminal reports whether the state is final. Terminal jobs stay in
// the registry so their outcome (and final loss bits) remain queryable.
func (s State) Terminal() bool {
	return s == Succeeded || s == Failed || s == Cancelled
}

// StepEvent is one completed training step as streamed over NDJSON and
// recorded in the job's history.
type StepEvent struct {
	Step             int     `json:"step"`
	Loss             float64 `json:"loss"`
	StepMillis       float64 `json:"step_ms"`
	BytesPushed      int64   `json:"bytes_pushed"`
	WireSentBytes    int64   `json:"wire_sent_bytes,omitempty"`
	WireRecvBytes    int64   `json:"wire_recv_bytes,omitempty"`
	Overlap          float64 `json:"overlap"`
	CompressionRatio float64 `json:"compression_ratio,omitempty"`
}

// checkpointReq is one POST /jobs/{id}/checkpoint, handed to the
// runner goroutine and answered between steps (Save must run from the
// goroutine driving the session).
type checkpointReq struct {
	dir  string
	done chan checkpointResp
}

type checkpointResp struct {
	step int
	err  error
}

// Job is one training job: its immutable identity plus mutable
// lifecycle state guarded by mu. Methods on Job never call back into
// the Service (lock order: Service.mu may be held while taking Job.mu,
// never the reverse).
type Job struct {
	ID     string
	Tenant string
	Spec   jobspec.Spec
	Demand cluster.Demand
	seq    int // admission order, for FIFO-within-tenant

	mu        sync.Mutex
	cond      *sync.Cond // broadcast on step append and state change
	state     State
	err       string
	steps     []StepEvent
	stepCount int // session StepCount at last observation
	cancel    context.CancelFunc

	submitted time.Time
	started   time.Time
	finished  time.Time

	finalLoss     float64
	finalLossBits uint64

	// ckpt carries checkpoint requests to the runner; buffered so a
	// request can park while a step is in flight.
	ckpt chan checkpointReq
}

func newJob(id, tenant string, spec jobspec.Spec, seq int) *Job {
	j := &Job{
		ID: id, Tenant: tenant, Spec: spec,
		Demand:    cluster.DemandOf(spec.Machines, spec.GPUs),
		seq:       seq,
		state:     Queued,
		submitted: time.Now(),
		ckpt:      make(chan checkpointReq, 4),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// Namespace is the job's PS namespace on the resident fleet:
// tenant-qualified so same-named variables of different tenants (or of
// two jobs of one tenant) never collide.
func (j *Job) Namespace() string { return j.Tenant + "/" + j.ID }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setRunning transitions queued → running.
func (j *Job) setRunning(cancel context.CancelFunc) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = Running
	j.cancel = cancel
	j.started = time.Now()
	j.cond.Broadcast()
}

// finish transitions to a terminal state, recording the failure cause
// (if any) and the final loss. No-op if already terminal (a cancel
// racing a natural completion keeps the first outcome).
func (j *Job) finish(s State, err error, finalLoss float64, finalBits uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = s
	if err != nil {
		j.err = err.Error()
	}
	j.finalLoss = finalLoss
	j.finalLossBits = finalBits
	j.finished = time.Now()
	j.cond.Broadcast()
}

// observe appends one completed step to the history.
func (j *Job) observe(ev StepEvent, sessionSteps int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.steps = append(j.steps, ev)
	j.stepCount = sessionSteps
	j.cond.Broadcast()
}

// waitSteps blocks until the history grows past from, the job reaches
// a terminal state, or ctx is cancelled; it returns the new events and
// whether the job is terminal. The caller resumes from from+len(events).
func (j *Job) waitSteps(ctx context.Context, from int) (events []StepEvent, terminal bool) {
	// A cond can't select on ctx: a watcher goroutine turns cancellation
	// into a broadcast, and the wait loop rechecks ctx on every wake.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()

	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.steps) <= from && !j.state.Terminal() && ctx.Err() == nil {
		j.cond.Wait()
	}
	if from < len(j.steps) {
		events = append(events, j.steps[from:]...)
	}
	return events, j.state.Terminal()
}

// View is the JSON shape of a job in GET /jobs and GET /jobs/{id}.
type View struct {
	ID        string       `json:"id"`
	Tenant    string       `json:"tenant"`
	Namespace string       `json:"namespace"`
	State     State        `json:"state"`
	Error     string       `json:"error,omitempty"`
	Spec      jobspec.Spec `json:"spec"`
	GPUs      int          `json:"gpus"`
	Submitted time.Time    `json:"submitted"`
	Started   *time.Time   `json:"started,omitempty"`
	Finished  *time.Time   `json:"finished,omitempty"`
	StepsDone int          `json:"steps_done"`
	// FinalLoss and FinalLossBits are set on terminal states;
	// FinalLossBits is the hex float64 bit pattern — the same value a
	// direct parallax run prints, so service-vs-direct equivalence is
	// checkable from the API alone.
	FinalLoss     float64 `json:"final_loss,omitempty"`
	FinalLossBits string  `json:"final_loss_bits,omitempty"`
}

// View snapshots the job.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID: j.ID, Tenant: j.Tenant, Namespace: j.Namespace(),
		State: j.state, Error: j.err, Spec: j.Spec,
		GPUs: j.Demand.GPUs, Submitted: j.submitted,
		StepsDone: len(j.steps),
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.state.Terminal() && j.finalLossBits != 0 {
		v.FinalLoss = j.finalLoss
		v.FinalLossBits = fmt.Sprintf("%016x", j.finalLossBits)
	}
	return v
}

// requestCheckpoint hands a checkpoint request to the runner and waits
// for the between-steps save. It fails fast when the job is not
// running.
func (j *Job) requestCheckpoint(ctx context.Context, dir string) (int, error) {
	if s := j.State(); s != Running {
		return 0, fmt.Errorf("job %s is %s, not running", j.ID, s)
	}
	req := checkpointReq{dir: dir, done: make(chan checkpointResp, 1)}
	select {
	case j.ckpt <- req:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	select {
	case resp := <-req.done:
		return resp.step, resp.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}
