package serve

import (
	"parallax"
	"parallax/internal/metrics"
)

// serviceMetrics is the daemon's Prometheus surface: per-job training
// series labeled {job, tenant} plus whole-service gauges, rendered at
// GET /metrics by the hand-rolled registry (internal/metrics/prom.go).
type serviceMetrics struct {
	reg *metrics.Registry

	submitted   *metrics.Counter
	jobsDone    *metrics.Counter
	jobsQueued  *metrics.Gauge
	jobsRunning *metrics.Gauge

	capacityGPUs *metrics.Gauge
	freeGPUs     *metrics.Gauge

	steps            *metrics.Counter
	stepSeconds      *metrics.Histogram
	loss             *metrics.Gauge
	overlap          *metrics.Gauge
	pushBytes        *metrics.Counter
	wireSentBytes    *metrics.Counter
	wireRecvBytes    *metrics.Counter
	compressionRatio *metrics.Gauge
	epoch            *metrics.Gauge
	recoveries       *metrics.Gauge
	checkpoints      *metrics.Counter
}

func newServiceMetrics() *serviceMetrics {
	r := metrics.NewRegistry()
	return &serviceMetrics{
		reg: r,
		submitted: r.NewCounter("parallax_jobs_submitted_total",
			"Jobs accepted by admission control.", "tenant"),
		jobsDone: r.NewCounter("parallax_jobs_done_total",
			"Jobs that reached a terminal state.", "state", "tenant"),
		jobsQueued: r.NewGauge("parallax_jobs_queued",
			"Jobs admitted but waiting for free GPUs."),
		jobsRunning: r.NewGauge("parallax_jobs_running",
			"Jobs currently training."),
		capacityGPUs: r.NewGauge("parallax_gpus_capacity",
			"Total GPUs in the cluster inventory."),
		freeGPUs: r.NewGauge("parallax_gpus_free",
			"GPUs not allocated to any running job."),
		steps: r.NewCounter("parallax_steps_total",
			"Completed training steps.", "job", "tenant"),
		stepSeconds: r.NewHistogram("parallax_step_seconds",
			"Training step latency.",
			[]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5},
			"job", "tenant"),
		loss: r.NewGauge("parallax_loss",
			"Loss at the most recent step.", "job", "tenant"),
		overlap: r.NewGauge("parallax_comm_overlap_ratio",
			"Share of synchronization hidden under backward compute at the most recent step.",
			"job", "tenant"),
		pushBytes: r.NewCounter("parallax_push_bytes_total",
			"Gradient payload bytes handed to the synchronization layer.", "job", "tenant"),
		wireSentBytes: r.NewCounter("parallax_wire_sent_bytes_total",
			"Framed bytes sent over the wire transport.", "job", "tenant"),
		wireRecvBytes: r.NewCounter("parallax_wire_recv_bytes_total",
			"Framed bytes received over the wire transport.", "job", "tenant"),
		compressionRatio: r.NewGauge("parallax_wire_compression_ratio",
			"Raw/compressed payload ratio at the most recent step (0 = nothing traveled compressed).",
			"job", "tenant"),
		epoch: r.NewGauge("parallax_session_epoch",
			"Fabric epoch of the job's session (bumps on recovery).", "job", "tenant"),
		recoveries: r.NewGauge("parallax_session_recoveries",
			"Recoveries the job's session has survived.", "job", "tenant"),
		checkpoints: r.NewCounter("parallax_checkpoints_total",
			"Checkpoints written on request.", "job", "tenant"),
	}
}

// observeStep records one completed step of job j.
func (m *serviceMetrics) observeStep(j *Job, st parallax.StepStats) {
	id, tn := j.ID, j.Tenant
	m.steps.Inc(id, tn)
	m.stepSeconds.Observe(st.StepTime.Seconds(), id, tn)
	m.loss.Set(st.Loss, id, tn)
	m.overlap.Set(st.OverlapFraction(), id, tn)
	m.pushBytes.Add(float64(st.BytesPushed), id, tn)
	m.wireSentBytes.Add(float64(st.WireSentBytes), id, tn)
	m.wireRecvBytes.Add(float64(st.WireRecvBytes), id, tn)
	m.compressionRatio.Set(st.CompressionRatio(), id, tn)
}

// observeSession records session-level counters (epoch, recoveries).
func (m *serviceMetrics) observeSession(j *Job, epoch, recoveries int) {
	m.epoch.Set(float64(epoch), j.ID, j.Tenant)
	m.recoveries.Set(float64(recoveries), j.ID, j.Tenant)
}
