package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// DetSource forbids wall-clock and ambient-randomness sources in
// data-plane packages: per the §12/§14 epoch discipline, everything
// that decides WHAT the data plane computes must be a pure function
// of the step count, or recovery replay and elastic transitions stop
// being bit-identical. Flagged: time.Now/Since/Until/After/AfterFunc/
// Tick/NewTimer/NewTicker/Sleep and the math/rand (+ v2) package-level
// functions, which draw from the shared, time-seeded global source.
//
// Deliberately NOT flagged: rand.New / rand.NewSource / rand.NewPCG /
// rand.NewChaCha8 / rand.NewZipf and methods on an explicit *rand.Rand
// — a generator seeded from configuration is a pure function of that
// seed, which is exactly how the dataset RNG works.
//
// Files whose basename contains "backoff", "chaos", "metrics", or
// "heartbeat" are allowlisted: retry jitter, fault injection pacing,
// and timing measurement are wall-clock by design and live in those
// files so the exemption is visible in the tree. Anything else needs
// //parallax:allow(detsource) with a justification.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc: "forbid time.Now/math-rand globals in data-plane packages outside allowlisted " +
		"metrics/backoff/chaos/heartbeat files; control flow must be a pure function of step count",
	Run: runDetSource,
}

var nondetTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "Sleep": true,
}

// seededRandConstructors take an explicit seed (or an explicit
// source), so their output is deterministic in their inputs.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

var detsourceAllowlist = []string{"backoff", "chaos", "metrics", "heartbeat"}

func allowlistedFile(filename string) bool {
	base := filepath.Base(filename)
	for _, frag := range detsourceAllowlist {
		if strings.Contains(base, frag) {
			return true
		}
	}
	return false
}

func runDetSource(pass *Pass) error {
	if !pass.DataPlane() {
		return nil
	}
	for _, file := range pass.Files {
		if allowlistedFile(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Package-level functions only: methods on *rand.Rand /
			// *time.Timer values are reached through an explicitly
			// constructed (and therefore seeded/justified) value.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if nondetTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"wall-clock source time.%s in data-plane package %s: step-count-pure control flow only (move to an allowlisted *backoff*/*chaos*/*metrics*/*heartbeat* file or annotate //parallax:allow(detsource))",
						fn.Name(), pass.Path)
				}
			case "math/rand", "math/rand/v2":
				if !seededRandConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"ambient randomness rand.%s (shared time-seeded source) in data-plane package %s: use an explicitly seeded *rand.Rand or annotate //parallax:allow(detsource)",
						fn.Name(), pass.Path)
				}
			}
			return true
		})
	}
	return nil
}
