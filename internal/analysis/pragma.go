package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Pragma grammar (DESIGN.md §15). A pragma is a line or trailing
// comment of the form
//
//	//parallax:orderinvariant -- <justification>
//	//parallax:allow(<name>[,<name>...]) -- <justification>
//
// where <name> is an analyzer name (detfold, detsource, wrapsentinel,
// lockheld) and <justification> is mandatory non-empty free text — an
// unjustified suppression is itself a diagnostic. `orderinvariant` is
// the canonical spelling for detfold suppressions ("this fold
// commutes; iteration order cannot reach the wire"); allow(...) is
// the general form. A pragma suppresses findings reported on its own
// source line and on the immediately following line, so both trailing
// and preceding-line placements work:
//
//	for k := range m { ... } //parallax:orderinvariant -- counts only
//
//	//parallax:allow(detsource) -- dial deadline is wall-clock by design
//	conn.SetDeadline(time.Now().Add(d))
const pragmaPrefix = "parallax:"

// A Pragma is one parsed suppression directive.
type Pragma struct {
	// Analyzers are the analyzer names the pragma suppresses.
	Analyzers []string
	// Justification is the mandatory free-text reason after " -- ".
	Justification string
}

// Suppresses reports whether the pragma covers the named analyzer.
func (p *Pragma) Suppresses(analyzer string) bool {
	for _, a := range p.Analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// analyzerNames are the valid targets of allow(...).
var analyzerNames = map[string]bool{
	"detfold":      true,
	"detsource":    true,
	"wrapsentinel": true,
	"lockheld":     true,
}

// ParsePragma parses the text of a //parallax:... comment (with the
// leading "//" stripped, as go/ast presents it). It returns an error
// for an unknown directive, an unknown analyzer name, an empty
// allow() list, or a missing justification.
func ParsePragma(text string) (*Pragma, error) {
	body, ok := strings.CutPrefix(strings.TrimSpace(text), pragmaPrefix)
	if !ok {
		return nil, fmt.Errorf("not a parallax pragma: %q", text)
	}
	directive, justification, found := strings.Cut(body, "--")
	directive = strings.TrimSpace(directive)
	justification = strings.TrimSpace(justification)
	if !found || justification == "" {
		return nil, fmt.Errorf("pragma %q needs a justification: //parallax:%s -- <why this site is safe>", directive, directive)
	}
	switch {
	case directive == "orderinvariant":
		return &Pragma{Analyzers: []string{"detfold"}, Justification: justification}, nil
	case strings.HasPrefix(directive, "allow(") && strings.HasSuffix(directive, ")"):
		list := directive[len("allow(") : len(directive)-1]
		var names []string
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !analyzerNames[name] {
				return nil, fmt.Errorf("pragma allow(...) names unknown analyzer %q (have detfold, detsource, wrapsentinel, lockheld)", name)
			}
			names = append(names, name)
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("pragma allow() suppresses nothing: name at least one analyzer")
		}
		return &Pragma{Analyzers: names, Justification: justification}, nil
	default:
		return nil, fmt.Errorf("unknown pragma directive %q (have orderinvariant, allow(...))", directive)
	}
}

// pragmaIndex maps file name -> source line -> pragmas anchored there.
type pragmaIndex map[string]map[int][]*Pragma

// suppresses reports whether a pragma on pos's line or the preceding
// line covers the analyzer.
func (idx pragmaIndex) suppresses(analyzer string, pos token.Position) bool {
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, p := range lines[line] {
			if p.Suppresses(analyzer) {
				return true
			}
		}
	}
	return false
}

// buildPragmaIndex scans a package's comments for parallax pragmas.
// Malformed pragmas become diagnostics (analyzer "pragma") — a typo
// in a suppression must fail the gate, not silently re-enable it.
func buildPragmaIndex(fset *token.FileSet, files []*ast.File) (pragmaIndex, []Diagnostic) {
	idx := pragmaIndex{}
	var bad []Diagnostic
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok || !strings.HasPrefix(strings.TrimSpace(text), pragmaPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				p, err := ParsePragma(text)
				if err != nil {
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "pragma", Message: err.Error()})
					continue
				}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int][]*Pragma{}
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], p)
			}
		}
	}
	return idx, bad
}
