package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHeld flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held — the deadlock shape the namespace-scoped
// Abort protocol (§13) exists to break by hand: a goroutine parks on
// a channel or a Conduit round trip with a server lock held, and
// every other goroutine that needs the lock parks behind it forever.
//
// Blocking operations: channel send/receive (a select with a default
// clause is non-blocking and exempt), range over a channel,
// time.Sleep, sync.WaitGroup.Wait, net dial/listen and net.Conn IO,
// internal/transport Conduit IO (Send*/Recv*/Dial*/Exchange*), and
// sync.Cond.Wait on a FOREIGN lock — c.Wait() while holding a mutex
// that does not share the cond's receiver base (p.cond.Wait() under
// p.mu is the sanctioned parking pattern and stays exempt; v.cond.Wait()
// under s.mu is a deadlock waiting for its trigger).
//
// The tracker is a source-order scan per function, not a CFG: locks
// acquired under one branch arm and released in another may
// misreport — annotate such sites with //parallax:allow(lockheld)
// and a justification.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: "flag blocking operations (channel ops, Conduit/net IO, foreign Cond.Wait) " +
		"while a sync.Mutex/RWMutex is held",
	Run: runLockHeld,
}

type heldLock struct {
	path string // rendered receiver path: "s.mu"
	base string // path minus the final selector: "s"
	pos  token.Pos
}

func runLockHeld(pass *Pass) error {
	for _, file := range pass.Files {
		for _, body := range functionBodies(file) {
			lt := &lockTracker{pass: pass}
			lt.walkStmts(body.List)
		}
	}
	return nil
}

type lockTracker struct {
	pass *Pass
	held []heldLock
}

func (lt *lockTracker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		lt.walkStmt(s)
	}
}

func (lt *lockTracker) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok && lt.lockOp(call) {
			return
		}
		lt.walkExpr(x.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end — the
		// standard pattern; the scan simply continues with it held.
		// Deferred function literals run after everything else and get
		// their own fresh scope in functionBodies.
		if !lt.isUnlockCall(x.Call) {
			for _, arg := range x.Call.Args {
				lt.walkExpr(arg)
			}
		}
	case *ast.GoStmt:
		// The go statement itself never blocks; the goroutine body is
		// a fresh scope handled by functionBodies.
		for _, arg := range x.Call.Args {
			lt.walkExpr(arg)
		}
	case *ast.SendStmt:
		lt.blockingOp(x.Pos(), "send on channel "+exprString(x.Chan))
		lt.walkExpr(x.Value)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			lt.walkExpr(r)
		}
		for _, l := range x.Lhs {
			lt.walkExpr(l)
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			lt.walkExpr(r)
		}
	case *ast.IfStmt:
		lt.walkStmt(x.Init)
		lt.walkExpr(x.Cond)
		lt.walkStmts(x.Body.List)
		lt.walkStmt(x.Else)
	case *ast.ForStmt:
		lt.walkStmt(x.Init)
		lt.walkExpr(x.Cond)
		lt.walkStmts(x.Body.List)
		lt.walkStmt(x.Post)
	case *ast.RangeStmt:
		if _, ok := lt.pass.Info.TypeOf(x.X).Underlying().(*types.Chan); ok {
			lt.blockingOp(x.Pos(), "receive from channel "+exprString(x.X))
		}
		lt.walkExpr(x.X)
		lt.walkStmts(x.Body.List)
	case *ast.SwitchStmt:
		lt.walkStmt(x.Init)
		lt.walkExpr(x.Tag)
		for _, c := range x.Body.List {
			lt.walkStmts(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		lt.walkStmt(x.Init)
		lt.walkStmt(x.Assign)
		for _, c := range x.Body.List {
			lt.walkStmts(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range x.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(x.Body.List) > 0 {
			// Without a default clause the select parks until one case
			// is ready — as blocking as a bare channel op.
			lt.blockingOp(x.Pos(), "select without default")
		}
		for _, c := range x.Body.List {
			lt.walkStmts(c.(*ast.CommClause).Body)
		}
	case *ast.BlockStmt:
		lt.walkStmts(x.List)
	case *ast.LabeledStmt:
		lt.walkStmt(x.Stmt)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lt.walkExpr(v)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		lt.walkExpr(x.X)
	}
}

// walkExpr scans an expression for blocking operations: receive
// expressions and blocking calls. Function literals are skipped (own
// scope).
func (lt *lockTracker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				lt.blockingOp(x.Pos(), "receive from channel "+exprString(x.X))
			}
		case *ast.CallExpr:
			if lt.lockOp(x) {
				return false
			}
			lt.checkBlockingCall(x)
		}
		return true
	})
}

// lockOp updates the held set for mu.Lock/RLock/Unlock/RUnlock calls
// and reports whether the call was one.
func (lt *lockTracker) lockOp(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := lt.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	path := exprString(sel.X)
	base := path
	if i := strings.LastIndex(path, "."); i >= 0 {
		base = path[:i]
	}
	switch fn.Name() {
	case "Lock", "RLock":
		if !lt.recvIsMutex(sel) {
			return false
		}
		lt.held = append(lt.held, heldLock{path: path, base: base, pos: call.Pos()})
		return true
	case "Unlock", "RUnlock":
		if !lt.recvIsMutex(sel) {
			return false
		}
		for i := len(lt.held) - 1; i >= 0; i-- {
			if lt.held[i].path == path {
				lt.held = append(lt.held[:i], lt.held[i+1:]...)
				break
			}
		}
		return true
	}
	return false
}

// recvIsMutex reports whether the selection's receiver is (or embeds)
// a sync.Mutex/RWMutex, as opposed to sync.Once/WaitGroup methods
// that share no names, or a sync.Locker interface value.
func (lt *lockTracker) recvIsMutex(sel *ast.SelectorExpr) bool {
	t := lt.pass.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		name := named.Obj().Name()
		if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" &&
			(name == "Mutex" || name == "RWMutex") {
			return true
		}
	}
	// Embedded mutex promoted through a struct: the selection still
	// lands on sync's method set.
	if s, ok := lt.pass.Info.Selections[sel]; ok {
		if recv := s.Obj().(*types.Func).Type().(*types.Signature).Recv(); recv != nil {
			rt := recv.Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				name := named.Obj().Name()
				return name == "Mutex" || name == "RWMutex"
			}
		}
	}
	return false
}

// isUnlockCall reports whether call is mu.Unlock()/mu.RUnlock() and,
// if so, records nothing: the deferred unlock fires at return, so the
// lock stays held for the remainder of the scan.
func (lt *lockTracker) isUnlockCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := lt.pass.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
		(fn.Name() == "Unlock" || fn.Name() == "RUnlock")
}

func (lt *lockTracker) blockingOp(pos token.Pos, what string) {
	if len(lt.held) == 0 {
		return
	}
	h := lt.held[len(lt.held)-1]
	lt.pass.Reportf(pos,
		"blocking %s while %s is held (locked at %s); release the lock first or annotate //parallax:allow(lockheld)",
		what, h.path, lt.pass.Fset.Position(h.pos))
}

func (lt *lockTracker) checkBlockingCall(call *ast.CallExpr) {
	if len(lt.held) == 0 {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := lt.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	name, pkg := fn.Name(), fn.Pkg().Path()
	switch {
	case pkg == "time" && name == "Sleep":
		lt.blockingOp(call.Pos(), "time.Sleep")
	case pkg == "sync" && name == "Wait":
		recv := lt.condOrWaitGroup(sel)
		switch recv {
		case "WaitGroup":
			lt.blockingOp(call.Pos(), "sync.WaitGroup.Wait on "+exprString(sel.X))
		case "Cond":
			lt.checkCondWait(call, sel)
		}
	case pkg == "net":
		lt.blockingOp(call.Pos(), "net."+name+" IO")
	case strings.HasSuffix(pkg, "internal/transport"):
		for _, prefix := range []string{"Send", "Recv", "Dial", "Exchange"} {
			if strings.HasPrefix(name, prefix) {
				lt.blockingOp(call.Pos(), "transport "+name+" round trip")
				return
			}
		}
	}
}

// condOrWaitGroup classifies a sync.Wait selection's receiver type.
func (lt *lockTracker) condOrWaitGroup(sel *ast.SelectorExpr) string {
	t := lt.pass.Info.TypeOf(sel.X)
	for t != nil {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// checkCondWait flags c.Wait() when a held mutex does not share the
// cond's receiver base: waiting on p.cond under p.mu is the parking
// pattern Cond exists for, but waiting on a foreign cond keeps OUR
// lock held while parked on THEIRS.
func (lt *lockTracker) checkCondWait(call *ast.CallExpr, sel *ast.SelectorExpr) {
	condPath := exprString(sel.X)
	condBase := condPath
	if i := strings.LastIndex(condPath, "."); i >= 0 {
		condBase = condPath[:i]
	}
	for _, h := range lt.held {
		if h.base != condBase {
			lt.pass.Reportf(call.Pos(),
				"%s.Wait() parks while foreign lock %s is held (locked at %s); release it first or annotate //parallax:allow(lockheld)",
				condPath, h.path, lt.pass.Fset.Position(h.pos))
			return
		}
	}
}
