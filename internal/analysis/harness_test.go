package analysis

// analysistest-style harness: each analyzer has a testdata package
// under testdata/src/<name> whose files carry `// want "regexp"`
// comments on the lines where a diagnostic must appear (several wants
// on one line are allowed). The harness loads the package through the
// real loader — so testdata must type-check, exactly as under the
// upstream framework — runs one analyzer, and fails on any unmatched
// diagnostic or unsatisfied want. Pragma-suppressed cases are simply
// flagged lines with a pragma and no want: a suppression regression
// shows up as an unmatched diagnostic.

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

var wantRE = regexp.MustCompile(`// want (.*)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func runAnalysisTest(t *testing.T, a *Analyzer, pkgPath string) {
	t.Helper()
	pkgs, err := Load(pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages for %s, want 1", len(pkgs), pkgPath)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	type want struct {
		re       *regexp.Regexp
		consumed bool
	}
	wants := map[key][]*want{}
	pkg := pkgs[0]
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					pattern, err := strconv.Unquote(`"` + arg[1] + `"`)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %q: %v", k.file, k.line, arg[1], err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", k.file, k.line, pattern, err)
					}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.consumed && w.re.MatchString(d.Message) {
				w.consumed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", k.file, k.line, d.Analyzer, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.consumed {
				t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, w.re)
			}
		}
	}
}
