// Package analysis is parallaxvet: four custom static analyzers that
// mechanically enforce the invariants the runtime's bit-determinism
// guarantee rests on (DESIGN.md §15):
//
//   - detfold: no order-dependent folds over Go's randomized map
//     iteration in data-plane packages — sort the keys first or
//     justify the site with //parallax:orderinvariant.
//   - detsource: no wall-clock or ambient-randomness sources in
//     data-plane packages — control flow must be a pure function of
//     step count (§12/§14 epoch discipline).
//   - wrapsentinel: fmt.Errorf over an internal/errs sentinel must use
//     %w so errors.Is keeps matching, and errors.Is against a local
//     sentinel that no in-package path ever constructs is dead code.
//   - lockheld: no blocking operations (channel ops, Conduit/net IO,
//     foreign Cond.Wait, time.Sleep) while a sync.Mutex/RWMutex is
//     held — the deadlock shape the namespace-scoped Abort protocol
//     (§13) exists to break.
//
// The package mirrors the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic) but is dependency-free: the build is
// hermetic, so the driver loads packages itself through
// `go list -export` and the standard library's gc export-data
// importer (see load.go). Swapping the analyzers onto the upstream
// framework later is a mechanical change — every Run function only
// touches go/ast and go/types.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. It mirrors the upstream
// x/tools analysis.Analyzer shape so the checks can migrate to the
// real framework without edits to their Run functions.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //parallax:allow(<name>) pragmas.
	Name string
	// Doc is the one-paragraph description printed by parallaxvet -help.
	Doc string
	// Run analyzes one package and reports findings through the Pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding, position-resolved for printing.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // import path
	Pkg      *types.Package
	Info     *types.Info

	pragmas pragmaIndex
	report  func(Diagnostic)
}

// Reportf records a finding at pos unless a pragma on the same or the
// preceding source line suppresses this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.pragmas.suppresses(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// dataPlanePackages are the import paths whose control flow and
// emission order must be bit-deterministic: everything on the path
// from a gradient to the wire, a checkpoint shard, or an optimizer
// fold. detfold and detsource scope themselves to these.
var dataPlanePackages = map[string]bool{
	"parallax/internal/transform":  true,
	"parallax/internal/psrt":       true,
	"parallax/internal/collective": true,
	"parallax/internal/tensor":     true,
	"parallax/internal/checkpoint": true,
	"parallax/internal/transport":  true,
	"parallax/internal/graph":      true,
	"parallax/internal/optim":      true,
}

// DataPlane reports whether the pass's package is subject to the
// data-plane-only analyzers. Packages under a testdata tree are
// always in scope so the analyzers' own analysistest suites exercise
// the data-plane rules (testdata is invisible to ./... sweeps).
func (p *Pass) DataPlane() bool {
	return dataPlanePackages[p.Path] || strings.Contains(p.Path, "/testdata/")
}

// Analyzers returns the full parallaxvet suite in its canonical
// reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetFold, DetSource, WrapSentinel, LockHeld}
}

// Run applies each analyzer to each loaded package and returns every
// finding (including malformed-pragma diagnostics recorded at load
// time), sorted by file, line, column, then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, pkg.BadPragmas...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				pragmas:  pkg.pragmas,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// rootIdent unwraps selectors, indexes, calls, derefs, and parens to
// the leftmost identifier of an expression: s.mu -> s,
// t.psAdmin(m).ReshardVar -> t, (*p).field -> p. Returns nil when the
// expression is not rooted at an identifier (composite literals,
// results of standalone calls, ...).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside the
// [pos, end] source interval. Objects with no position (nil, builtin)
// count as outside.
func declaredWithin(obj types.Object, pos, end token.Pos) bool {
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() >= pos && obj.Pos() <= end
}

// exprString renders a selector path for diagnostics (s.mu,
// f.series). Falls back to a placeholder for unprintable shapes.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	case *ast.UnaryExpr:
		return exprString(x.X)
	default:
		return "<expr>"
	}
}
