package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

func TestParsePragma(t *testing.T) {
	cases := []struct {
		text          string
		analyzers     []string
		justification string
		errContains   string // non-empty: parse must fail with this substring
	}{
		{
			text:          "parallax:orderinvariant -- fold commutes",
			analyzers:     []string{"detfold"},
			justification: "fold commutes",
		},
		{
			text:          "parallax:allow(detsource) -- dial deadline is wall-clock by design",
			analyzers:     []string{"detsource"},
			justification: "dial deadline is wall-clock by design",
		},
		{
			text:          "parallax:allow(detsource,lockheld) -- bounded hold",
			analyzers:     []string{"detsource", "lockheld"},
			justification: "bounded hold",
		},
		{
			text:          "  parallax:allow( wrapsentinel , detfold ) --  spaced out  ",
			analyzers:     []string{"wrapsentinel", "detfold"},
			justification: "spaced out",
		},
		{text: "parallax:orderinvariant", errContains: "needs a justification"},
		{text: "parallax:orderinvariant -- ", errContains: "needs a justification"},
		{text: "parallax:allow(detfold)", errContains: "needs a justification"},
		{text: "parallax:allow() -- why", errContains: "suppresses nothing"},
		{text: "parallax:allow(nosuch) -- why", errContains: "unknown analyzer"},
		{text: "parallax:frobnicate -- why", errContains: "unknown pragma directive"},
		{text: "go:generate stringer", errContains: "not a parallax pragma"},
	}
	for _, c := range cases {
		p, err := ParsePragma(c.text)
		if c.errContains != "" {
			if err == nil {
				t.Errorf("ParsePragma(%q) = %+v, want error containing %q", c.text, p, c.errContains)
			} else if !strings.Contains(err.Error(), c.errContains) {
				t.Errorf("ParsePragma(%q) error %q, want it to contain %q", c.text, err, c.errContains)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePragma(%q): %v", c.text, err)
			continue
		}
		if !reflect.DeepEqual(p.Analyzers, c.analyzers) {
			t.Errorf("ParsePragma(%q).Analyzers = %v, want %v", c.text, p.Analyzers, c.analyzers)
		}
		if p.Justification != c.justification {
			t.Errorf("ParsePragma(%q).Justification = %q, want %q", c.text, p.Justification, c.justification)
		}
	}
}

func TestPragmaIndexSuppression(t *testing.T) {
	const src = `package p

func f() int {
	x := 1 //parallax:allow(detsource) -- same-line trailing pragma
	//parallax:orderinvariant -- preceding-line pragma
	y := 2
	z := 3
	return x + y + z
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx, bad := buildPragmaIndex(fset, []*ast.File{f})
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-pragma diagnostics: %v", bad)
	}
	at := func(line int) token.Position { return token.Position{Filename: "p.go", Line: line} }

	if !idx.suppresses("detsource", at(4)) {
		t.Error("trailing pragma must suppress its own line")
	}
	if idx.suppresses("lockheld", at(4)) {
		t.Error("pragma must only suppress the analyzers it names")
	}
	if !idx.suppresses("detfold", at(6)) {
		t.Error("pragma must suppress the immediately following line")
	}
	if idx.suppresses("detfold", at(7)) {
		t.Error("pragma must not reach two lines down")
	}
}

func TestBuildPragmaIndexMalformed(t *testing.T) {
	const src = `package p

//parallax:allow(bogus) -- not an analyzer
func g() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx, bad := buildPragmaIndex(fset, []*ast.File{f})
	if len(bad) != 1 {
		t.Fatalf("got %d malformed-pragma diagnostics, want 1: %v", len(bad), bad)
	}
	if bad[0].Analyzer != "pragma" || !strings.Contains(bad[0].Message, "unknown analyzer") {
		t.Errorf("diagnostic = %v, want analyzer %q mentioning the unknown analyzer", bad[0], "pragma")
	}
	// A malformed pragma must not enter the index: a typo cannot
	// silently re-enable the site it meant to justify.
	if idx.suppresses("detfold", token.Position{Filename: "p.go", Line: 4}) {
		t.Error("malformed pragma must not suppress anything")
	}
}
