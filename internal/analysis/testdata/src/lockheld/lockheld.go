// Package lockheld is the analysistest fixture for the lockheld
// analyzer: blocking operations — channel ops, time.Sleep,
// WaitGroup.Wait, a select without a default, a foreign Cond.Wait —
// while a sync.Mutex/RWMutex is held.
package lockheld

import (
	"sync"
	"time"
)

type queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	ch   chan int
	vals []int
}

// sendHeld sends on a channel with the mutex held. Flagged.
func (q *queue) sendHeld(v int) {
	q.mu.Lock()
	q.ch <- v // want "blocking send on channel q.ch while q.mu is held"
	q.mu.Unlock()
}

// sendReleased releases the lock before the send. Clean.
func (q *queue) sendReleased(v int) {
	q.mu.Lock()
	q.vals = append(q.vals, v)
	q.mu.Unlock()
	q.ch <- v
}

// recvDeferred holds to function end via defer, so the receive parks
// under the lock. Flagged.
func (q *queue) recvDeferred() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want "blocking receive from channel q.ch while q.mu is held"
}

// sleepHeld naps with the lock held. Flagged.
func (q *queue) sleepHeld() {
	q.mu.Lock()
	time.Sleep(time.Millisecond) // want "blocking time.Sleep while q.mu is held"
	q.mu.Unlock()
}

// tryPublish uses select-with-default: non-blocking by construction.
// Clean.
func (q *queue) tryPublish(v int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

// parkBlind selects without a default under the lock: as blocking as
// a bare channel op. Flagged once, at the select.
func (q *queue) parkBlind(stop chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want "blocking select without default while q.mu is held"
	case <-stop:
	case v := <-q.ch:
		q.vals = append(q.vals, v)
	}
}

// waitOwn parks on its own cond under its own mutex — the pattern
// sync.Cond exists for. Clean.
func (q *queue) waitOwn() {
	q.mu.Lock()
	for len(q.vals) == 0 {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// waitForeign parks on another queue's cond while holding q's lock:
// our lock stays held while we sleep on theirs. Flagged.
func (q *queue) waitForeign(other *queue) {
	q.mu.Lock()
	other.cond.Wait() // want "parks while foreign lock q.mu is held"
	q.mu.Unlock()
}

// waitGroupHeld waits on a WaitGroup under the lock. Flagged.
func (q *queue) waitGroupHeld(wg *sync.WaitGroup) {
	q.mu.Lock()
	defer q.mu.Unlock()
	wg.Wait() // want "sync.WaitGroup.Wait on wg while q.mu is held"
}

// justified blocks under the lock with a justified pragma: suppressed.
func (q *queue) justified(v int) {
	q.mu.Lock()
	q.ch <- v //parallax:allow(lockheld) -- fixture: buffered channel sized so the send never parks
	q.mu.Unlock()
}
