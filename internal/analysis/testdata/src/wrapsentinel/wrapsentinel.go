// Package wrapsentinel is the analysistest fixture for the
// wrapsentinel analyzer: fmt.Errorf over a module sentinel (from
// internal/errs or declared locally) must use %w, and errors.Is
// against an unexported local sentinel with no construction path is
// dead code.
package wrapsentinel

import (
	"errors"
	"fmt"

	"parallax/internal/errs"
)

// ErrStale is a package-local sentinel; construction paths below must
// preserve its chain.
var ErrStale = errors.New("wrapsentinel: stale")

// errOrphan is never returned or wrapped anywhere in the package, so
// matching against it is dead.
var errOrphan = errors.New("wrapsentinel: orphan")

// errReachable is wrapped by makeReachable, keeping liveIs live.
var errReachable = errors.New("wrapsentinel: reachable")

// flattened formats sentinels through value verbs: the chain flattens
// to text and errors.Is stops matching. Both flagged.
func flattened(name string) error {
	if name == "" {
		return fmt.Errorf("lookup %q: %v", name, errs.ErrClosed) // want "sentinel ErrClosed formatted with %v"
	}
	return fmt.Errorf("lookup %q: %s", name, ErrStale) // want "sentinel ErrStale formatted with %s"
}

// wrapped preserves the chains with %w. Clean.
func wrapped(name string) error {
	if name == "" {
		return fmt.Errorf("lookup %q: %w", name, errs.ErrClosed)
	}
	return fmt.Errorf("lookup %q: %w", name, ErrStale)
}

// deadIs compares against errOrphan, which no construction path ever
// mints into a chain: the comparison can never be true. Flagged.
func deadIs(err error) bool {
	return errors.Is(err, errOrphan) // want "errors.Is target errOrphan is never returned or wrapped"
}

// makeReachable mints errReachable into a chain.
func makeReachable() error { return fmt.Errorf("step: %w", errReachable) }

// liveIs is clean: makeReachable constructs its target.
func liveIs(err error) bool { return errors.Is(err, errReachable) }

// justified flattens a sentinel under a pragma: suppressed.
func justified() string {
	return fmt.Errorf("display only: %v", errs.ErrClosed).Error() //parallax:allow(wrapsentinel) -- fixture: display-only rendering, never matched with errors.Is
}
