// Package detfold is the analysistest fixture for the detfold
// analyzer. Its import path sits under a testdata tree, which the
// driver treats as data-plane, so every rule is live here. The
// flushSorted/flushUnsorted pair is the acceptance demo: the same
// map fold with the key sort present is clean, and with the sort
// removed it must fail the gate.
package detfold

import (
	"fmt"
	"sort"
	"strings"
)

// floatFold accumulates floats in map-iteration order: FP addition is
// not associative, so the sum differs run to run. Flagged.
func floatFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "accumulates floating-point values into sum"
	}
	return sum
}

// intFold counts entries: integer folds commute, and a bind-free
// `for range` cannot observe order at all. Clean.
func intFold(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	for k := range m {
		if len(k) > 3 {
			n++
		}
	}
	return n
}

// flushSorted mirrors the metrics text flush: collect the keys, sort
// them, then emit in sorted order — the sanctioned shape. Clean.
func flushSorted(series map[string]float64, w *strings.Builder) {
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %g\n", name, series[name])
	}
}

// flushUnsorted is flushSorted with the key sort removed — the
// acceptance demo that dropping the sort from a data-plane map fold
// fails the gate.
func flushUnsorted(series map[string]float64, w *strings.Builder) {
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name) // want "appends to names in map-iteration order"
	}
	for _, name := range names {
		fmt.Fprintf(w, "%s %g\n", name, series[name])
	}
}

// directEmit writes to an outer writer from inside the range: bytes
// hit the buffer in map-iteration order. Flagged.
func directEmit(series map[string]float64, w *strings.Builder) {
	for name, v := range series {
		fmt.Fprintf(w, "%s %g\n", name, v) // want "writes to w in map-iteration order via fmt.Fprintf"
	}
}

// rebuild writes indexed by the loop key: map keys are distinct, so
// per-key writes commute across iterations. Clean.
func rebuild(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// lastKey publishes whichever key the randomized iteration visits
// last. Flagged.
func lastKey(m map[string]int) string {
	last := ""
	for k := range m {
		last = k // want "assigns loop-derived values to shared last"
	}
	return last
}

// drain sends loop values on a channel: the receiver observes
// map-iteration order. Flagged.
func drain(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "sends on ch in map-iteration order"
	}
}

type sink struct{ rows []string }

func (s *sink) Append(row string) { s.rows = append(s.rows, row) }

// pushRows calls a mutation-verb method on state declared outside the
// loop with a loop-derived argument. Flagged.
func pushRows(m map[string]int, s *sink) {
	for k := range m {
		s.Append(k) // want "calls s.Append with loop-derived arguments"
	}
}

// scaled propagates taint through a loop-local: row derives from v,
// so appending it is still an ordered emission. Flagged.
func scaled(m map[string]float64, scale float64) []float64 {
	var out []float64
	for _, v := range m {
		row := v * scale
		out = append(out, row) // want "appends to out in map-iteration order"
	}
	return out
}

// prune deletes by key: delete commutes. Clean.
func prune(keep map[string]bool, m map[string]int) {
	for k := range m {
		if !keep[k] {
			delete(m, k)
		}
	}
}

// maxVal folds with max, which commutes — justified with the pragma,
// so the assignment is suppressed.
func maxVal(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v //parallax:orderinvariant -- max commutes; any iteration order yields the same result
		}
	}
	return best
}

// badPragma carries a justification-less pragma: the malformed
// suppression is itself a diagnostic and must NOT silence the finding
// on the following line.
func badPragma(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//parallax:orderinvariant // want "needs a justification"
		sum += v // want "accumulates floating-point values into sum"
	}
	return sum
}
