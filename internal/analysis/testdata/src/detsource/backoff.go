package detsource

import "time"

// retryAt is wall-clock by design: this file's basename contains
// "backoff", so the allowlist exempts it without pragmas.
func retryAt(d time.Duration) time.Time {
	return time.Now().Add(d)
}
