// Package detsource is the analysistest fixture for the detsource
// analyzer: wall-clock and ambient-randomness reads in a data-plane
// package (any testdata path counts as data-plane) are flagged unless
// the file is allowlisted (see backoff.go) or the site carries a
// justified pragma.
package detsource

import (
	"math/rand"
	"time"
)

// stamp reads the wall clock in ordinary data-plane code. Flagged.
func stamp() time.Time {
	return time.Now() // want "wall-clock source time.Now"
}

// stepDelay measures elapsed wall time. Flagged.
func stepDelay(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock source time.Since"
}

// shuffled draws from the shared, time-seeded global source. Flagged.
func shuffled(n int) []int {
	return rand.Perm(n) // want "ambient randomness rand.Perm"
}

// seeded builds an explicit generator: its output is a pure function
// of the seed, exactly how the dataset RNG works. Clean.
func seeded(seed int64, n int) []int {
	r := rand.New(rand.NewSource(seed))
	return r.Perm(n)
}

// justified reads the clock under a pragma with a justification:
// suppressed.
func justified() time.Time {
	return time.Now() //parallax:allow(detsource) -- fixture: justified wall-clock read outside step control flow
}
