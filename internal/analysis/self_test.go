package analysis

import "testing"

// TestRepoCleanUnderParallaxvet is the self-test gate: the whole
// module must run clean under all four analyzers. A new
// order-dependent map fold, wall-clock read, un-wrapped sentinel, or
// blocking-under-lock site anywhere in the tree fails this test until
// it is fixed or carries a justified //parallax: pragma. Fixture
// packages under testdata/ are exempt automatically — the ./...
// pattern never matches testdata directories.
func TestRepoCleanUnderParallaxvet(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module via go list -export")
	}
	pkgs, err := Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := Run(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("running parallaxvet: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Error("parallaxvet must run clean over the tree; fix the findings or justify them with //parallax: pragmas (DESIGN.md §15)")
	}
}
