package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked target of an analysis run.
type Package struct {
	Path  string // import path
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// BadPragmas are malformed //parallax: comments found while
	// indexing suppressions; Run folds them into the findings.
	BadPragmas []Diagnostic

	pragmas pragmaIndex
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

// goList runs `go list` with the given arguments in dir and decodes
// the JSON stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// moduleRoot locates the enclosing module's directory so patterns
// like ./... mean the whole repo regardless of the caller's cwd.
func moduleRoot() (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("analysis: not inside a Go module: %w", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// Load type-checks the packages matching the patterns (resolved at
// the module root; ./... therefore always means the whole repo). The
// driver is hermetic: dependencies are imported from the compiled
// export data `go list -export` records in the build cache, and only
// the target packages themselves are parsed from source. Test files
// are not loaded — the invariants govern shipped code, and tests
// legitimately use wall clocks and unordered walks.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	targets, err := goList(root, append([]string{"-json=ImportPath,Name,Dir,GoFiles,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	// -deps compiles the full import universe and records export-data
	// file paths for every package, including the targets' own deps
	// on one another.
	universe, err := goList(root, append([]string{"-export", "-deps", "-json=ImportPath,Export,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(universe))
	for _, e := range universe {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		if t.Standard || len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", t.ImportPath, err)
		}
		pragmas, bad := buildPragmaIndex(fset, files)
		pkgs = append(pkgs, &Package{
			Path:       t.ImportPath,
			Name:       t.Name,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
			BadPragmas: bad,
			pragmas:    pragmas,
		})
	}
	return pkgs, nil
}
