package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetFold flags `range` over a map in a data-plane package whose body
// is order-dependent: Go randomizes map iteration, so a fold that
// accumulates floats, appends to a wire/checkpoint buffer, mutates
// shared trainer/server state, or sends on a channel in iteration
// order produces run-to-run-different bits. The fix is to collect the
// keys, sort them, and iterate the sorted slice (the analyzer
// recognizes that shape: an append target that is sorted later in the
// same function is clean), or to justify the site with
// //parallax:orderinvariant when the fold genuinely commutes.
//
// Order-invariant bodies are exempt without annotation: integer
// counting (x++, x += n), writes indexed by the loop key itself
// (out[k] = v — keys are distinct, so iterations commute), delete
// calls, and loops that never bind the key or value (every iteration
// is indistinguishable).
var DetFold = &Analyzer{
	Name: "detfold",
	Doc: "flag order-dependent folds over randomized map iteration in data-plane packages; " +
		"sort keys first or annotate //parallax:orderinvariant",
	Run: runDetFold,
}

// mutationVerbs are method-name prefixes treated as writes when
// called on state declared outside the loop with loop-derived
// arguments.
var mutationVerbs = []string{
	"Append", "Write", "Encode", "Push", "Set", "Add", "Store", "Observe",
	"Record", "Reshard", "Install", "Restore", "Apply", "Merge", "Fold",
	"Send", "Emit", "Enqueue", "Put", "Register",
}

func runDetFold(pass *Pass) error {
	if !pass.DataPlane() {
		return nil
	}
	for _, file := range pass.Files {
		for _, body := range functionBodies(file) {
			fd := &foldDetector{pass: pass, funcBody: body}
			fd.walk(body)
		}
	}
	return nil
}

// functionBodies returns every function body in the file — FuncDecl
// bodies and FuncLit bodies — each analyzed as its own sort-scan
// scope.
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				bodies = append(bodies, x.Body)
			}
		case *ast.FuncLit:
			if x.Body != nil {
				bodies = append(bodies, x.Body)
			}
		}
		return true
	})
	return bodies
}

type foldDetector struct {
	pass     *Pass
	funcBody *ast.BlockStmt
}

// walk visits one function body looking for map ranges, without
// descending into nested function literals (they are scopes of their
// own and appear separately in functionBodies).
func (fd *foldDetector) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if _, ok := fd.pass.Info.TypeOf(x.X).Underlying().(*types.Map); ok {
				fd.checkMapRange(x)
			}
		}
		return true
	})
}

func (fd *foldDetector) checkMapRange(rs *ast.RangeStmt) {
	info := fd.pass.Info
	keyObj := rangeVarObject(info, rs.Key)
	valObj := rangeVarObject(info, rs.Value)
	if keyObj == nil && valObj == nil {
		// `for range m`: every iteration is indistinguishable, so
		// iteration order cannot be observed.
		return
	}

	tainted := fd.taintSet(rs, keyObj, valObj)
	mapName := exprString(rs.X)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			fd.checkAssign(rs, x, keyObj, tainted, mapName)
		case *ast.CallExpr:
			fd.checkCall(rs, x, tainted, mapName)
		case *ast.SendStmt:
			if referencesAny(info, x, tainted) {
				fd.pass.Reportf(x.Pos(),
					"range over map %s sends on %s in map-iteration order; iterate sorted keys or annotate //parallax:orderinvariant",
					mapName, exprString(x.Chan))
			}
		}
		return true
	})
}

// rangeVarObject resolves a range-clause variable to its object,
// treating the blank identifier as unbound.
func rangeVarObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id] // `for k = range m` with a pre-declared k
}

// taintSet seeds the loop variables and propagates through local
// assignments inside the body (row := v.data taints row), iterating
// to a fixpoint so later-statement definitions flow too.
func (fd *foldDetector) taintSet(rs *ast.RangeStmt, keyObj, valObj types.Object) map[types.Object]bool {
	info := fd.pass.Info
	tainted := map[types.Object]bool{}
	if keyObj != nil {
		tainted[keyObj] = true
	}
	if valObj != nil {
		tainted[valObj] = true
	}
	for {
		grew := false
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || !referencesAny(info, as, tainted) {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil && declaredWithin(obj, rs.Pos(), rs.End()) && !tainted[obj] {
						tainted[obj] = true
						grew = true
					}
				}
			}
			return true
		})
		if !grew {
			return tainted
		}
	}
}

func (fd *foldDetector) checkAssign(rs *ast.RangeStmt, as *ast.AssignStmt, keyObj types.Object, tainted map[types.Object]bool, mapName string) {
	info := fd.pass.Info
	if !referencesAny(info, as, tainted) {
		return
	}
	for i, lhs := range as.Lhs {
		obj := fd.outerObject(rs, lhs)
		if obj == nil {
			continue // declared inside the loop, or not rooted at an identifier
		}
		if indexedByKey(info, lhs, keyObj) {
			// out[k] = v / counts[k] += n: map keys are distinct, so
			// per-key writes commute across iterations.
			continue
		}
		// x = append(x, ...): clean iff x is sorted later in this
		// function before anything else can observe its order.
		if i < len(as.Rhs) {
			if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
				if !fd.sortedAfter(rs.End(), obj) {
					fd.pass.Reportf(as.Pos(),
						"range over map %s appends to %s in map-iteration order and %s is never sorted before use; sort it (sort.* / slices.Sort*) or annotate //parallax:orderinvariant",
						mapName, obj.Name(), obj.Name())
				}
				continue
			}
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if isFloat(info.TypeOf(lhs)) {
				fd.pass.Reportf(as.Pos(),
					"range over map %s accumulates floating-point values into %s in map-iteration order (FP addition is not associative); iterate sorted keys or annotate //parallax:orderinvariant",
					mapName, exprString(lhs))
			}
			// Integer/bitwise folds commute; leave them alone.
		case token.ASSIGN, token.DEFINE:
			fd.pass.Reportf(as.Pos(),
				"range over map %s assigns loop-derived values to shared %s in map-iteration order; iterate sorted keys or annotate //parallax:orderinvariant",
				mapName, exprString(lhs))
		}
	}
}

func (fd *foldDetector) checkCall(rs *ast.RangeStmt, call *ast.CallExpr, tainted map[types.Object]bool, mapName string) {
	info := fd.pass.Info
	if !referencesAny(info, call, tainted) {
		return
	}
	// delete(m2, k) commutes per key.
	if isBuiltinNamed(info, call, "delete") {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return // type conversion or non-function selector
	}
	// fmt.Fprint* to a writer declared outside the loop emits bytes in
	// map-iteration order.
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		if w := fd.outerObject(rs, call.Args[0]); w != nil {
			fd.pass.Reportf(call.Pos(),
				"range over map %s writes to %s in map-iteration order via fmt.%s; iterate sorted keys or annotate //parallax:orderinvariant",
				mapName, exprString(call.Args[0]), fn.Name())
		}
		return
	}
	// Mutation-verb method on a receiver declared outside the loop; for
	// package-level functions (receiver is the package name), the
	// mutation target is an argument, so one must be outer-rooted.
	recv := fd.outerObject(rs, sel.X)
	if recv == nil {
		return
	}
	if _, isPkg := recv.(*types.PkgName); isPkg {
		outerArg := false
		for _, arg := range call.Args {
			if fd.outerObject(rs, arg) != nil {
				outerArg = true
				break
			}
		}
		if !outerArg {
			return
		}
	}
	for _, verb := range mutationVerbs {
		if strings.HasPrefix(fn.Name(), verb) {
			fd.pass.Reportf(call.Pos(),
				"range over map %s calls %s.%s with loop-derived arguments in map-iteration order; iterate sorted keys or annotate //parallax:orderinvariant",
				mapName, exprString(sel.X), fn.Name())
			return
		}
	}
}

// outerObject resolves an expression to its root identifier's object
// when that object is declared OUTSIDE the range statement (shared
// state); returns nil for loop-local roots.
func (fd *foldDetector) outerObject(rs *ast.RangeStmt, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	obj := fd.pass.Info.Uses[id]
	if obj == nil {
		obj = fd.pass.Info.Defs[id]
	}
	if obj == nil || declaredWithin(obj, rs.Pos(), rs.End()) {
		return nil
	}
	return obj
}

// indexedByKey reports whether lhs is base[k] with k exactly the
// range key identifier.
func indexedByKey(info *types.Info, lhs ast.Expr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(ix.Index).(*ast.Ident)
	return ok && (info.Uses[id] == keyObj || info.Defs[id] == keyObj)
}

// sortedAfter reports whether some call after pos in the enclosing
// function sorts the slice obj: sort.* / slices.Sort* from the
// standard library, or any local helper whose name contains "sort".
func (fd *foldDetector) sortedAfter(pos token.Pos, obj types.Object) bool {
	info := fd.pass.Info
	found := false
	ast.Inspect(fd.funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		name := calleeName(call)
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if referencesObject(info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// calleeName renders the full call target path — "sort.Strings",
// "slices.Sort", "sortRoutes" — so the substring test sees the
// package qualifier too (sort.Strings's final identifier alone does
// not contain "sort").
func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return exprString(f)
	default:
		return ""
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	return isBuiltinNamed(info, call, "append")
}

func isBuiltinNamed(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// referencesAny reports whether the subtree mentions any tainted
// object.
func referencesAny(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// referencesObject reports whether the subtree mentions obj.
func referencesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	return referencesAny(info, n, map[types.Object]bool{obj: true})
}
