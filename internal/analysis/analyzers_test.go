package analysis

import "testing"

// Each analyzer runs over its fixture package under testdata/src; the
// fixtures hold at least one flagged, one clean, and one
// pragma-suppressed case per rule (see harness_test.go for the `want`
// matching contract).

func TestDetFold(t *testing.T) {
	runAnalysisTest(t, DetFold, "parallax/internal/analysis/testdata/src/detfold")
}

func TestDetSource(t *testing.T) {
	runAnalysisTest(t, DetSource, "parallax/internal/analysis/testdata/src/detsource")
}

func TestWrapSentinel(t *testing.T) {
	runAnalysisTest(t, WrapSentinel, "parallax/internal/analysis/testdata/src/wrapsentinel")
}

func TestLockHeld(t *testing.T) {
	runAnalysisTest(t, LockHeld, "parallax/internal/analysis/testdata/src/lockheld")
}
