package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// WrapSentinel enforces the error discipline the public API
// documents: conditions are matched with errors.Is against the
// internal/errs sentinels, so every construction path must preserve
// the chain.
//
// Check 1: fmt.Errorf called with a sentinel argument must wrap it
// with %w. A sentinel formatted through %v/%s/%d flattens to text and
// errors.Is(err, ErrX) silently stops matching — the exact regression
// class PR 5 converted the tree away from. A sentinel here is a
// package-level `Err*` variable of type error declared in this
// module (internal/errs itself, the root package's re-exports, or a
// package-local sentinel).
//
// Check 2: errors.Is(err, target) where target is an unexported
// package-level sentinel that no code in the same package ever
// returns, wraps, or otherwise references cannot match anything —
// nobody outside the package can construct an unexported sentinel, so
// the comparison is dead and almost certainly a refactoring leftover.
var WrapSentinel = &Analyzer{
	Name: "wrapsentinel",
	Doc: "require %w when fmt.Errorf wraps an internal/errs sentinel, and flag errors.Is " +
		"targets no in-package construction path can ever match",
	Run: runWrapSentinel,
}

func runWrapSentinel(pass *Pass) error {
	errorType := types.Universe.Lookup("error").Type()

	// sentinelObject resolves an expression to a module-level error
	// sentinel var, unwrapping parens and selectors (errs.ErrClosed).
	sentinelObject := func(e ast.Expr) *types.Var {
		var id *ast.Ident
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		default:
			return nil
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil {
			return nil
		}
		// Both spellings of the sentinel convention: exported ErrFoo and
		// package-private errFoo (check 2 only ever concerns the latter).
		if !strings.HasPrefix(v.Name(), "Err") && !strings.HasPrefix(v.Name(), "err") {
			return nil
		}
		if !types.Identical(v.Type(), errorType) {
			return nil
		}
		// Module packages only: the discipline governs our own
		// sentinels, not stdlib vars like io.EOF (which have their own
		// vet story).
		path := v.Pkg().Path()
		if path != "parallax" && !strings.HasPrefix(path, "parallax/") {
			return nil
		}
		if v.Parent() != v.Pkg().Scope() {
			return nil // not package-level
		}
		return v
	}

	type isTarget struct {
		call *ast.CallExpr
		obj  *types.Var
	}
	var isTargets []isTarget
	// Every use position of each sentinel object, so check 2 can ask
	// "is it referenced anywhere besides its errors.Is sites?".
	otherUses := map[*types.Var]int{}

	// Pass A: find fmt.Errorf misuses and collect errors.Is targets.
	targetIdents := map[*ast.Ident]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
				checkErrorf(pass, call, sentinelObject)
			case fn.Pkg().Path() == "errors" && (fn.Name() == "Is" || fn.Name() == "As") && len(call.Args) == 2:
				if fn.Name() == "Is" {
					if obj := sentinelObject(call.Args[1]); obj != nil && obj.Pkg() == pass.Pkg {
						isTargets = append(isTargets, isTarget{call, obj})
					}
				}
				// Remember the target ident so pass B doesn't count it
				// as a construction use.
				switch x := ast.Unparen(call.Args[1]).(type) {
				case *ast.Ident:
					targetIdents[x] = true
				case *ast.SelectorExpr:
					targetIdents[x.Sel] = true
				}
			}
			return true
		})
	}

	// Pass B: count non-target, non-declaration uses of each local
	// sentinel that appears as an errors.Is target.
	wanted := map[*types.Var]bool{}
	for _, t := range isTargets {
		wanted[t.obj] = true
	}
	if len(wanted) > 0 {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || targetIdents[id] {
					return true
				}
				if v, ok := pass.Info.Uses[id].(*types.Var); ok && wanted[v] {
					otherUses[v]++
				}
				return true
			})
		}
	}
	for _, t := range isTargets {
		// Exported sentinels (and re-exports of another package's
		// sentinel) can legitimately be constructed elsewhere.
		if t.obj.Exported() || !declaredViaErrorsNew(pass, t.obj) {
			continue
		}
		if otherUses[t.obj] == 0 {
			pass.Reportf(t.call.Pos(),
				"errors.Is target %s is never returned or wrapped by any construction path in this package; the comparison can never be true",
				t.obj.Name())
		}
	}
	return nil
}

// checkErrorf verifies that every sentinel argument of a fmt.Errorf
// call is consumed by a %w verb.
func checkErrorf(pass *Pass, call *ast.CallExpr, sentinelObject func(ast.Expr) *types.Var) {
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return // non-literal format: out of scope
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, indexed := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		obj := sentinelObject(arg)
		if obj == nil {
			continue
		}
		if indexed || i >= len(verbs) {
			// Explicit argument indexes (or a verb/arg mismatch vet
			// already flags): fall back to requiring %w somewhere.
			if !strings.Contains(format, "%w") {
				pass.Reportf(arg.Pos(),
					"sentinel %s passed to fmt.Errorf without %%w; errors.Is stops matching the chain",
					obj.Name())
			}
			continue
		}
		if verbs[i] != 'w' {
			pass.Reportf(arg.Pos(),
				"sentinel %s formatted with %%%c; use %%w so errors.Is keeps matching the chain",
				obj.Name(), verbs[i])
		}
	}
}

// formatVerbs extracts the verb letters of a format string in
// argument order. indexed reports whether any explicit argument index
// ([n]) appears, in which case positional alignment is unsound.
func formatVerbs(format string) (verbs []rune, indexed bool) {
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(runes) && strings.ContainsRune("+-# 0123456789.*", runes[i]) {
			if runes[i] == '*' {
				verbs = append(verbs, '*') // * consumes an argument
			}
			i++
		}
		if i < len(runes) && runes[i] == '[' {
			indexed = true
			for i < len(runes) && runes[i] != ']' {
				i++
			}
			i++
		}
		if i < len(runes) {
			verbs = append(verbs, runes[i])
		}
	}
	return verbs, indexed
}

// declaredViaErrorsNew reports whether the sentinel's declaration
// initializer is a direct errors.New / fmt.Errorf call — i.e. the
// package mints the identity itself rather than aliasing another
// package's sentinel (var ErrClosed = errs.ErrClosed).
func declaredViaErrorsNew(pass *Pass, obj *types.Var) bool {
	for _, file := range pass.Files {
		if file.Pos() > obj.Pos() || obj.Pos() > file.End() {
			continue
		}
		found := false
		ast.Inspect(file, func(n ast.Node) bool {
			spec, ok := n.(*ast.ValueSpec)
			if !ok || found {
				return !found
			}
			for i, name := range spec.Names {
				if pass.Info.Defs[name] != obj || i >= len(spec.Values) {
					continue
				}
				if call, ok := ast.Unparen(spec.Values[i]).(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
							((fn.Pkg().Path() == "errors" && fn.Name() == "New") ||
								(fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf")) {
							found = true
						}
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
