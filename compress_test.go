package parallax

// Tests for the wire-compression subsystem (DESIGN.md §11): policy
// parsing, loss tolerance under lossy codecs, bit-identity across
// fabrics, the wire-byte reductions on a real TCP run, and
// checkpoint/restore of error-feedback residuals.

import (
	"context"
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"parallax/internal/data"
)

func TestParseCompression(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "none"},
		{"none", "none"},
		{"f16", CompressionF16().Fingerprint()},
		{"bf16", CompressionBF16().Fingerprint()},
		{"topk", CompressionTopK(0.1).Fingerprint()},
		{"topk=0.25", CompressionTopK(0.25).Fingerprint()},
	}
	for _, c := range cases {
		p, err := ParseCompression(c.in)
		if err != nil {
			t.Fatalf("ParseCompression(%q): %v", c.in, err)
		}
		if fp := p.Fingerprint(); fp != c.want {
			t.Fatalf("ParseCompression(%q) = %q, want %q", c.in, fp, c.want)
		}
	}
	for _, bad := range []string{"zstd", "topk=0", "topk=1.5", "topk=x", "f8"} {
		if _, err := ParseCompression(bad); err == nil {
			t.Fatalf("ParseCompression(%q) accepted", bad)
		}
	}
}

// TestCompressionInvalidPolicyRejected: Open fails early on a malformed
// policy instead of training with it.
func TestCompressionInvalidPolicyRejected(t *testing.T) {
	_, err := Open(context.Background(), buildAPIModel(8, 150), Uniform(2, 2),
		WithSparsePartitions(3), WithCompression(CompressionPolicy{DenseTopK: 2}))
	if err == nil {
		t.Fatal("DenseTopK=2 accepted")
	}
}

// runCompressedSteps drives a single-process 2x2 hybrid session for
// totalSteps under the given policy and returns per-step losses.
func runCompressedSteps(t *testing.T, totalSteps int, policy CompressionPolicy, extra ...Option) []float64 {
	t.Helper()
	opts := append([]Option{WithSparsePartitions(3), WithCompression(policy)}, extra...)
	losses, _ := runSessionSteps(t, totalSteps, opts...)
	return losses
}

// TestCompressedLossTolerance: training under each lossy policy tracks
// the exact-f32 run closely — the loss after 10 steps stays within a
// pinned relative tolerance. (CompressionNone itself must be bitwise
// exact, which TestSessionStepsMatchesRunLoop already pins since the
// zero policy is the default.)
func TestCompressedLossTolerance(t *testing.T) {
	const steps = 10
	ref := runCompressedSteps(t, steps, CompressionNone)
	for _, c := range []struct {
		name   string
		policy CompressionPolicy
		tol    float64
	}{
		{"f16", CompressionF16(), 0.01},
		{"bf16", CompressionBF16(), 0.05},
		{"topk10", CompressionTopK(0.1), 0.10},
	} {
		losses := runCompressedSteps(t, steps, c.policy)
		got, want := losses[steps-1], ref[steps-1]
		if rel := math.Abs(got-want) / math.Abs(want); rel > c.tol {
			t.Errorf("%s: loss %.6f vs exact %.6f (rel %.4f > tol %.4f)",
				c.name, got, want, rel, c.tol)
		}
	}
}

// TestCompressedBitIdenticalAcrossFabrics is the core invariant of the
// compression design: the lossy transforms run in the data plane at
// fabric-symmetric points, so a compressed job trains bit-identically
// in one process and across TCP agents. Exercised under the most
// aggressive policy (top-k + f16 + delta), which covers every
// compressed frame kind on the wire.
func TestCompressedBitIdenticalAcrossFabrics(t *testing.T) {
	const steps = 6
	policy := CompressionTopK(0.1)
	ref := runCompressedSteps(t, steps, policy, WithOptimizer(func() Optimizer { return NewMomentum(0.3, 0.9) }))

	sessions := sessionTCPPair(t, WithSparsePartitions(3), WithCompression(policy),
		WithOptimizer(func() Optimizer { return NewMomentum(0.3, 0.9) }))
	runTCPAgents(t, sessions, steps, ref)
}

// runTCPAgents drives both agents for `steps` steps and checks every
// loss bitwise against ref; sessions are closed on return.
func runTCPAgents(t *testing.T, sessions [2]*Session, steps int, ref []float64) {
	t.Helper()
	done := make(chan error, 2)
	for p := 0; p < 2; p++ {
		go func(p int) {
			s := sessions[p]
			defer s.Close()
			for st, err := range s.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
				if err != nil {
					done <- err
					return
				}
				if math.Float64bits(st.Loss) != math.Float64bits(ref[st.Step]) {
					t.Errorf("agent %d step %d loss %x, inproc %x",
						p, st.Step, math.Float64bits(st.Loss), math.Float64bits(ref[st.Step]))
					done <- nil
					return
				}
				if st.Step == steps-1 {
					break
				}
			}
			done <- nil
		}(p)
	}
	for p := 0; p < 2; p++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// buildWideModel is the hybrid LM with a dense trunk wide enough that
// fusion-bucket AllReduce traffic dominates the wire — the regime the
// top-k reduction claim is about. The embedding stays sparse on the PS
// path so every route class still carries traffic.
func buildWideModel(batch, vocab int) *Graph {
	rng := NewRNG(17)
	g := NewGraph()
	tokens := g.Input("tokens", Int, batch)
	labels := g.Input("labels", Int, batch)
	var emb *Node
	g.InPartitioner(func() {
		emb = g.Variable("embedding", rng.RandN(0.1, vocab, 8))
	})
	w1 := g.Variable("w1", rng.RandN(0.1, 8, 256))
	w2 := g.Variable("w2", rng.RandN(0.1, 256, 256))
	w3 := g.Variable("w3", rng.RandN(0.1, 256, vocab))
	h := g.MatMul(g.Gather(emb, tokens), w1)
	h = g.MatMul(h, w2)
	g.SoftmaxCE(g.MatMul(h, w3), labels)
	return g
}

// wideTCPPair is sessionTCPPair over buildWideModel.
func wideTCPPair(t *testing.T, opts ...Option) [2]*Session {
	t.Helper()
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), "127.0.0.1:0"}
	var sessions [2]*Session
	var errs [2]error
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			dc := DistConfig{Machine: p, Addrs: addrs, DialTimeout: 10 * time.Second}
			if p == 0 {
				dc.Listener = ln0
			}
			sessions[p], errs[p] = Open(context.Background(), buildWideModel(8, 150), Uniform(2, 2),
				append(append([]Option{}, opts...), WithDistConfig(dc))...)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", p, err)
		}
	}
	return sessions
}

// TestCompressedWireReduction runs the wide hybrid LM over real TCP
// agents under each policy and checks the wire wins the subsystem
// exists for: f16 halves the compressed frames' payloads (ratio ~2x,
// counted by the raw-vs-compressed accounting) and top-k at 10% cuts
// the TOTAL bytes on the wire — pulls, headers, everything — by at
// least 5x against the uncompressed run.
func TestCompressedWireReduction(t *testing.T) {
	const steps = 4
	run := func(policy CompressionPolicy) (sent, raw, comp int64) {
		sessions := wideTCPPair(t, WithSparsePartitions(3), WithCompression(policy))
		done := make(chan error, 2)
		var agg [2]LoopStats
		for p := 0; p < 2; p++ {
			go func(p int) {
				s := sessions[p]
				defer s.Close()
				for st, err := range s.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
					if err != nil {
						done <- err
						return
					}
					agg[p].Observe(st)
					if st.Step == steps-1 {
						break
					}
				}
				done <- nil
			}(p)
		}
		for p := 0; p < 2; p++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		for p := 0; p < 2; p++ {
			sent += agg[p].TotalWireSent
			raw += agg[p].TotalWireRaw
			comp += agg[p].TotalWireCompressed
		}
		return sent, raw, comp
	}

	noneSent, noneRaw, noneComp := run(CompressionNone)
	if noneRaw != 0 || noneComp != 0 {
		t.Fatalf("CompressionNone produced compression accounting: raw %d comp %d", noneRaw, noneComp)
	}
	if noneSent == 0 {
		t.Fatal("no wire traffic measured")
	}

	f16Sent, f16Raw, f16Comp := run(CompressionF16())
	if f16Comp == 0 {
		t.Fatal("f16 run compressed nothing")
	}
	// Payload reduction over compressed frames: 4 -> 2 bytes per value,
	// diluted only by frame headers and varint index savings.
	if ratio := float64(f16Raw) / float64(f16Comp); ratio < 1.9 {
		t.Errorf("f16 payload ratio %.2fx, want ~2x", ratio)
	}
	if f16Sent >= noneSent {
		t.Errorf("f16 total wire %d not below uncompressed %d", f16Sent, noneSent)
	}

	topkSent, _, topkComp := run(CompressionTopK(0.1))
	if topkComp == 0 {
		t.Fatal("topk run compressed nothing")
	}
	if ratio := float64(noneSent) / float64(topkSent); ratio < 5 {
		t.Errorf("topk total wire reduction %.2fx (sent %d vs %d), want >= 5x",
			ratio, topkSent, noneSent)
	} else {
		t.Logf("topk wire reduction: %.2fx (%d -> %d bytes), f16: %.2fx payload",
			ratio, noneSent, topkSent, float64(f16Raw)/float64(f16Comp))
	}
}

// TestCompressedCheckpointResume: a top-k run saved mid-stream restores
// bit-identically — which requires the error-feedback residuals to
// round-trip through the checkpoint, since after the save point every
// worker's selection depends on them.
func TestCompressedCheckpointResume(t *testing.T) {
	const saveAt, total = 4, 10
	policy := CompressionTopK(0.1)
	opts := []Option{
		WithSparsePartitions(3), WithCompression(policy),
		WithOptimizer(func() Optimizer { return NewMomentum(0.3, 0.9) }),
	}
	refLosses, _ := runSessionSteps(t, total, opts...)

	dir := t.TempDir()
	s, err := Open(context.Background(), buildAPIModel(8, 150), Uniform(2, 2), opts...)
	if err != nil {
		t.Fatal(err)
	}
	for st, err := range s.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
		if err != nil {
			t.Fatal(err)
		}
		if st.Step == saveAt-1 {
			break
		}
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenFromCheckpoint(context.Background(), dir, buildAPIModel(8, 150), Uniform(2, 2), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for st, err := range s2.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(st.Loss) != math.Float64bits(refLosses[st.Step]) {
			t.Fatalf("resumed step %d loss %x, uninterrupted %x",
				st.Step, math.Float64bits(st.Loss), math.Float64bits(refLosses[st.Step]))
		}
		if st.Step == total-1 {
			break
		}
	}
}

// TestCompressedCheckpointPolicyMismatch: a checkpoint can only be
// restored under the policy that wrote it, in both directions, with the
// typed sentinel.
func TestCompressedCheckpointPolicyMismatch(t *testing.T) {
	runTo := func(dir string, opts ...Option) {
		t.Helper()
		s, err := Open(context.Background(), buildAPIModel(8, 150), Uniform(2, 2), opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var n int
		for _, err := range s.Steps(context.Background(), data.NewZipfText(150, 8, 1, 1.0, 5)) {
			if err != nil {
				t.Fatal(err)
			}
			if n++; n == 2 {
				break
			}
		}
		if err := s.Save(dir); err != nil {
			t.Fatal(err)
		}
	}
	reopen := func(dir string, opts ...Option) error {
		_, err := OpenFromCheckpoint(context.Background(), dir, buildAPIModel(8, 150), Uniform(2, 2), opts...)
		return err
	}

	// Compressed checkpoint, uncompressed (and differently compressed) restores.
	dirTopK := t.TempDir()
	runTo(dirTopK, WithSparsePartitions(3), WithCompression(CompressionTopK(0.1)))
	if err := reopen(dirTopK, WithSparsePartitions(3)); !errors.Is(err, ErrCompressionMismatch) {
		t.Fatalf("topk checkpoint, none restore: err = %v, want ErrCompressionMismatch", err)
	}
	if err := reopen(dirTopK, WithSparsePartitions(3), WithCompression(CompressionF16())); !errors.Is(err, ErrCompressionMismatch) {
		t.Fatalf("topk checkpoint, f16 restore: err = %v, want ErrCompressionMismatch", err)
	}
	if err := reopen(dirTopK, WithSparsePartitions(3), WithCompression(CompressionTopK(0.1))); err != nil {
		t.Fatalf("matching restore failed: %v", err)
	}

	// Uncompressed (version-1) checkpoint, compressed restore.
	dirNone := t.TempDir()
	runTo(dirNone, WithSparsePartitions(3))
	if err := reopen(dirNone, WithSparsePartitions(3), WithCompression(CompressionF16())); !errors.Is(err, ErrCompressionMismatch) {
		t.Fatalf("none checkpoint, f16 restore: err = %v, want ErrCompressionMismatch", err)
	}
}
