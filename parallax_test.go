package parallax

import (
	"strings"
	"testing"

	"parallax/internal/data"
)

// buildAPIModel constructs a small sparse model purely through the public
// API, following the Fig. 3 pattern.
func buildAPIModel(batch, vocab int) *Graph {
	rng := NewRNG(17)
	g := NewGraph()
	tokens := g.Input("tokens", Int, batch)
	labels := g.Input("labels", Int, batch)
	var emb *Node
	g.InPartitioner(func() {
		emb = g.Variable("embedding", rng.RandN(0.1, vocab, 16))
	})
	w := g.Variable("proj", rng.RandN(0.1, 16, vocab))
	g.SoftmaxCE(g.MatMul(g.Gather(emb, tokens), w), labels)
	return g
}

func TestGetRunnerDefaultsAndTraining(t *testing.T) {
	g := buildAPIModel(8, 120)
	runner, err := GetRunner(g, Uniform(2, 2), Config{SparsePartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if runner.Workers() != 4 {
		t.Fatalf("workers = %d", runner.Workers())
	}
	ds := data.NewZipfText(120, 8, 1, 1.0, 5)
	shards := make([]Dataset, runner.Workers())
	for w := range shards {
		shards[w] = Shard(data.NewZipfText(120, 8, 1, 1.0, 5), w, runner.Workers())
	}
	_ = ds
	var first, last float64
	for step := 0; step < 20; step++ {
		feeds := make([]Feed, runner.Workers())
		for w := range feeds {
			b := shards[w].(*data.Shard).Next()
			feeds[w] = Feed{Ints: map[string][]int{"tokens": b.Tokens, "labels": b.Labels}}
		}
		loss, err := runner.Run(feeds)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if !(last < first) {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestDescribeShowsHybridSplit(t *testing.T) {
	g := buildAPIModel(4, 50)
	runner, err := GetRunner(g, Uniform(2, 1), Config{SparsePartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := runner.Describe()
	if !strings.Contains(d, "embedding") || !strings.Contains(d, "ps") {
		t.Errorf("Describe missing PS route:\n%s", d)
	}
	if !strings.Contains(d, "proj") || !strings.Contains(d, "allreduce") {
		t.Errorf("Describe missing AR route:\n%s", d)
	}
}

func TestAutomaticPartitionSearch(t *testing.T) {
	g := buildAPIModel(8, 2000)
	runner, err := GetRunner(g, Uniform(2, 2), Config{
		AlphaHint: map[string]float64{"embedding": 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := runner.SparsePartitions()
	if p < 1 || p > 2000 {
		t.Fatalf("searched partitions = %d out of range", p)
	}
	// A quick step must work with the searched partitioning.
	feeds := make([]Feed, runner.Workers())
	for w := range feeds {
		feeds[w] = Feed{Ints: map[string][]int{
			"tokens": {1, 2, 3, 4, 5, 6, 7, 8},
			"labels": {0, 1, 2, 3, 4, 5, 6, 7},
		}}
	}
	if _, err := runner.Run(feeds); err != nil {
		t.Fatal(err)
	}
}

func TestDenseOnlyGraphSkipsSearchAndServers(t *testing.T) {
	rng := NewRNG(3)
	g := NewGraph()
	x := g.Input("x", Float, 4, 8)
	labels := g.Input("labels", Int, 4)
	w := g.Variable("w", rng.RandN(0.2, 8, 5))
	g.SoftmaxCE(g.MatMul(x, w), labels)
	runner, err := GetRunner(g, Uniform(2, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if runner.SparsePartitions() != 1 {
		t.Fatalf("dense model searched partitions: %d", runner.SparsePartitions())
	}
	feeds := make([]Feed, 2)
	for i := range feeds {
		feeds[i] = Feed{
			Floats: map[string]*Dense{"x": rng.RandN(1, 4, 8)},
			Ints:   map[string][]int{"labels": {0, 1, 2, 3}},
		}
	}
	if _, err := runner.Run(feeds); err != nil {
		t.Fatal(err)
	}
}

func TestGetRunnerValidations(t *testing.T) {
	g := NewGraph()
	g.Input("x", Float, 1, 1) // no loss
	if _, err := GetRunner(g, Uniform(1, 1), Config{}); err == nil {
		t.Fatal("graph without loss must fail")
	}
	g2 := buildAPIModel(2, 10)
	if _, err := GetRunner(g2, ResourceInfo{}, Config{}); err == nil {
		t.Fatal("empty resources must fail")
	}
}

func TestMeasureAlphaPublicAPI(t *testing.T) {
	a := MeasureAlpha(data.NewZipfText(500, 16, 4, 1.0, 9), 500, 5)
	if a <= 0 || a >= 1 {
		t.Fatalf("alpha = %v", a)
	}
}

func TestConfigVariants(t *testing.T) {
	g := buildAPIModel(4, 40)
	for _, cfg := range []Config{
		{Arch: AllReduceOnly, SparsePartitions: 1},
		{Arch: PSOnly, SparsePartitions: 2},
		{Arch: OptimizedPS, SparsePartitions: 2},
		{Arch: Hybrid, SparsePartitions: 2, ClipNorm: 1.0},
		{Arch: PSOnly, SparsePartitions: 2, Async: true},
		{Arch: Hybrid, SparsePartitions: 2, DenseAgg: AggSum, SparseAgg: AggSum,
			NewOptimizer: func() Optimizer { return NewMomentum(0.01, 0.9) }},
	} {
		runner, err := GetRunner(g, Uniform(2, 1), cfg)
		if err != nil {
			t.Fatalf("config %+v: %v", cfg, err)
		}
		feeds := make([]Feed, runner.Workers())
		for w := range feeds {
			feeds[w] = Feed{Ints: map[string][]int{
				"tokens": {1, 2, 3, 4}, "labels": {5, 6, 7, 8},
			}}
		}
		if _, err := runner.Run(feeds); err != nil {
			t.Fatalf("config %+v: step: %v", cfg, err)
		}
	}
}
