package parallax

import (
	"strings"
	"testing"

	"parallax/internal/data"
)

// buildAPIModel constructs a small sparse model purely through the public
// API, following the Fig. 3 pattern.
func buildAPIModel(batch, vocab int) *Graph {
	rng := NewRNG(17)
	g := NewGraph()
	tokens := g.Input("tokens", Int, batch)
	labels := g.Input("labels", Int, batch)
	var emb *Node
	g.InPartitioner(func() {
		emb = g.Variable("embedding", rng.RandN(0.1, vocab, 16))
	})
	w := g.Variable("proj", rng.RandN(0.1, 16, vocab))
	g.SoftmaxCE(g.MatMul(g.Gather(emb, tokens), w), labels)
	return g
}

func TestGetRunnerDefaultsAndTraining(t *testing.T) {
	g := buildAPIModel(8, 120)
	runner, err := GetRunner(g, Uniform(2, 2), Config{SparsePartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	if runner.Workers() != 4 {
		t.Fatalf("workers = %d", runner.Workers())
	}
	ds := data.NewZipfText(120, 8, 1, 1.0, 5)
	shards := make([]Dataset, runner.Workers())
	for w := range shards {
		shards[w] = Shard(data.NewZipfText(120, 8, 1, 1.0, 5), w, runner.Workers())
	}
	_ = ds
	var first, last float64
	for step := 0; step < 20; step++ {
		feeds := make([]Feed, runner.Workers())
		for w := range feeds {
			b := shards[w].(*data.Shard).Next()
			feeds[w] = Feed{Ints: map[string][]int{"tokens": b.Tokens, "labels": b.Labels}}
		}
		loss, err := runner.Run(feeds)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if !(last < first) {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestDescribeShowsHybridSplit(t *testing.T) {
	g := buildAPIModel(4, 50)
	runner, err := GetRunner(g, Uniform(2, 1), Config{SparsePartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	d := runner.Describe()
	if !strings.Contains(d, "embedding") || !strings.Contains(d, "ps") {
		t.Errorf("Describe missing PS route:\n%s", d)
	}
	if !strings.Contains(d, "proj") || !strings.Contains(d, "allreduce") {
		t.Errorf("Describe missing AR route:\n%s", d)
	}
	if !strings.Contains(d, "transport: inproc") {
		t.Errorf("Describe missing transport line:\n%s", d)
	}
}

func TestRunnerCloseIdempotent(t *testing.T) {
	g := buildAPIModel(8, 120)
	runner, err := GetRunner(g, Uniform(2, 2), Config{SparsePartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	ds := data.NewZipfText(120, 8, 1, 1.0, 5)
	if _, err := runner.RunLoop(ds, 2); err != nil {
		t.Fatal(err)
	}
	runner.Close()
	runner.Close() // second Close must be a no-op, not a panic
}

func TestAutomaticPartitionSearch(t *testing.T) {
	g := buildAPIModel(8, 2000)
	runner, err := GetRunner(g, Uniform(2, 2), Config{
		AlphaHint: map[string]float64{"embedding": 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	p := runner.SparsePartitions()
	if p < 1 || p > 2000 {
		t.Fatalf("searched partitions = %d out of range", p)
	}
	// A quick step must work with the searched partitioning.
	feeds := make([]Feed, runner.Workers())
	for w := range feeds {
		feeds[w] = Feed{Ints: map[string][]int{
			"tokens": {1, 2, 3, 4, 5, 6, 7, 8},
			"labels": {0, 1, 2, 3, 4, 5, 6, 7},
		}}
	}
	if _, err := runner.Run(feeds); err != nil {
		t.Fatal(err)
	}
}

func TestDenseOnlyGraphSkipsSearchAndServers(t *testing.T) {
	rng := NewRNG(3)
	g := NewGraph()
	x := g.Input("x", Float, 4, 8)
	labels := g.Input("labels", Int, 4)
	w := g.Variable("w", rng.RandN(0.2, 8, 5))
	g.SoftmaxCE(g.MatMul(x, w), labels)
	runner, err := GetRunner(g, Uniform(2, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	if runner.SparsePartitions() != 1 {
		t.Fatalf("dense model searched partitions: %d", runner.SparsePartitions())
	}
	feeds := make([]Feed, 2)
	for i := range feeds {
		feeds[i] = Feed{
			Floats: map[string]*Dense{"x": rng.RandN(1, 4, 8)},
			Ints:   map[string][]int{"labels": {0, 1, 2, 3}},
		}
	}
	if _, err := runner.Run(feeds); err != nil {
		t.Fatal(err)
	}
}

func TestGetRunnerValidations(t *testing.T) {
	g := NewGraph()
	g.Input("x", Float, 1, 1) // no loss
	if _, err := GetRunner(g, Uniform(1, 1), Config{}); err == nil {
		t.Fatal("graph without loss must fail")
	}
	g2 := buildAPIModel(2, 10)
	if _, err := GetRunner(g2, ResourceInfo{}, Config{}); err == nil {
		t.Fatal("empty resources must fail")
	}
}

func TestRunLoopPublicAPI(t *testing.T) {
	g := buildAPIModel(8, 150)
	runner, err := GetRunner(g, Uniform(2, 2), Config{SparsePartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()

	var hookSteps int
	var lastStats StepStats
	stats, err := runner.RunLoop(data.NewZipfText(150, 8, 1, 1.0, 21), 25, func(s StepStats) {
		if s.Step != hookSteps {
			t.Errorf("hook saw step %d, want %d", s.Step, hookSteps)
		}
		hookSteps++
		lastStats = s
	})
	if err != nil {
		t.Fatal(err)
	}
	if hookSteps != 25 || stats.Steps != 25 {
		t.Fatalf("ran %d hook steps, stats counted %d, want 25", hookSteps, stats.Steps)
	}
	if !(stats.LastLoss < stats.FirstLoss) {
		t.Fatalf("RunLoop loss did not decrease: %v -> %v", stats.FirstLoss, stats.LastLoss)
	}
	if lastStats.BytesPushed <= 0 || stats.TotalBytesPushed <= 0 {
		t.Fatalf("push-byte metrics missing: step %d total %d", lastStats.BytesPushed, stats.TotalBytesPushed)
	}
	if lastStats.StepTime <= 0 || stats.TotalTime <= 0 {
		t.Fatalf("timing metrics missing: step %v total %v", lastStats.StepTime, stats.TotalTime)
	}
}

func TestRunLoopFeedsCustomInputs(t *testing.T) {
	// A dense-only graph without tokens/labels inputs: RunLoop must refuse
	// it with a helpful error, RunLoopFeeds must drive it.
	rng := NewRNG(8)
	g := NewGraph()
	x := g.Input("x", Float, 4, 6)
	labels := g.Input("y", Int, 4)
	w := g.Variable("w", rng.RandN(0.2, 6, 3))
	g.SoftmaxCE(g.MatMul(x, w), labels)
	runner, err := GetRunner(g, Uniform(2, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()

	if _, err := runner.RunLoop(data.NewZipfText(10, 4, 1, 1.0, 3), 1); err == nil {
		t.Fatal("RunLoop on a graph without tokens/labels inputs must fail")
	}

	stats, err := runner.RunLoopFeeds(func(step, worker int) (Feed, error) {
		return Feed{
			Floats: map[string]*Dense{"x": rng.RandN(1, 4, 6)},
			Ints:   map[string][]int{"y": {0, 1, 2, 0}},
		}, nil
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps != 5 {
		t.Fatalf("ran %d steps, want 5", stats.Steps)
	}

	// A transposed float feed has the right element count but the wrong
	// shape; it must be rejected before dispatch, not crash a worker.
	_, err = runner.RunLoopFeeds(func(step, worker int) (Feed, error) {
		return Feed{
			Floats: map[string]*Dense{"x": rng.RandN(1, 6, 4)},
			Ints:   map[string][]int{"y": {0, 1, 2, 0}},
		}, nil
	}, 1)
	if err == nil {
		t.Fatal("transposed float feed must fail")
	}
}

func TestMeasureAlphaPublicAPI(t *testing.T) {
	a := MeasureAlpha(data.NewZipfText(500, 16, 4, 1.0, 9), 500, 5)
	if a <= 0 || a >= 1 {
		t.Fatalf("alpha = %v", a)
	}
}

func TestConfigVariants(t *testing.T) {
	g := buildAPIModel(4, 40)
	for _, cfg := range []Config{
		{Arch: AllReduceOnly, SparsePartitions: 1},
		{Arch: PSOnly, SparsePartitions: 2},
		{Arch: OptimizedPS, SparsePartitions: 2},
		{Arch: Hybrid, SparsePartitions: 2, ClipNorm: 1.0},
		{Arch: PSOnly, SparsePartitions: 2, Async: true},
		{Arch: Hybrid, SparsePartitions: 2, DenseAgg: AggSum, SparseAgg: AggSum,
			NewOptimizer: func() Optimizer { return NewMomentum(0.01, 0.9) }},
	} {
		runner, err := GetRunner(g, Uniform(2, 1), cfg)
		if err != nil {
			t.Fatalf("config %+v: %v", cfg, err)
		}
		feeds := make([]Feed, runner.Workers())
		for w := range feeds {
			feeds[w] = Feed{Ints: map[string][]int{
				"tokens": {1, 2, 3, 4}, "labels": {5, 6, 7, 8},
			}}
		}
		if _, err := runner.Run(feeds); err != nil {
			t.Fatalf("config %+v: step: %v", cfg, err)
		}
		runner.Close()
	}
}
