package parallax

import (
	"strings"
	"testing"

	"parallax/internal/data"
)

// buildAPIModel constructs a small sparse model purely through the public
// API, following the Fig. 3 pattern.
func buildAPIModel(batch, vocab int) *Graph {
	rng := NewRNG(17)
	g := NewGraph()
	tokens := g.Input("tokens", Int, batch)
	labels := g.Input("labels", Int, batch)
	var emb *Node
	g.InPartitioner(func() {
		emb = g.Variable("embedding", rng.RandN(0.1, vocab, 16))
	})
	w := g.Variable("proj", rng.RandN(0.1, 16, vocab))
	g.SoftmaxCE(g.MatMul(g.Gather(emb, tokens), w), labels)
	return g
}

func TestGetRunnerDefaultsAndTraining(t *testing.T) {
	g := buildAPIModel(8, 120)
	runner, err := GetRunner(g, Uniform(2, 2), Config{SparsePartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	if runner.Workers() != 4 {
		t.Fatalf("workers = %d", runner.Workers())
	}
	ds := data.NewZipfText(120, 8, 1, 1.0, 5)
	shards := make([]Dataset, runner.Workers())
	for w := range shards {
		shards[w] = Shard(data.NewZipfText(120, 8, 1, 1.0, 5), w, runner.Workers())
	}
	_ = ds
	var first, last float64
	for step := 0; step < 20; step++ {
		feeds := make([]Feed, runner.Workers())
		for w := range feeds {
			b := shards[w].(*data.Shard).Next()
			feeds[w] = Feed{Ints: map[string][]int{"tokens": b.Tokens, "labels": b.Labels}}
		}
		loss, err := runner.Run(feeds)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if !(last < first) {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestDescribeShowsHybridSplit(t *testing.T) {
	g := buildAPIModel(4, 50)
	runner, err := GetRunner(g, Uniform(2, 1), Config{SparsePartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	d := runner.Describe()
	if !strings.Contains(d, "embedding") || !strings.Contains(d, "ps") {
		t.Errorf("Describe missing PS route:\n%s", d)
	}
	if !strings.Contains(d, "proj") || !strings.Contains(d, "allreduce") {
		t.Errorf("Describe missing AR route:\n%s", d)
	}
	if !strings.Contains(d, "transport: inproc") {
		t.Errorf("Describe missing transport line:\n%s", d)
	}
}

func TestRunnerCloseIdempotent(t *testing.T) {
	g := buildAPIModel(8, 120)
	runner, err := GetRunner(g, Uniform(2, 2), Config{SparsePartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	ds := data.NewZipfText(120, 8, 1, 1.0, 5)
	if _, err := runner.RunLoop(ds, 2); err != nil {
		t.Fatal(err)
	}
	runner.Close()
	runner.Close() // second Close must be a no-op, not a panic
}

func TestAutomaticPartitionSearch(t *testing.T) {
	g := buildAPIModel(8, 2000)
	runner, err := GetRunner(g, Uniform(2, 2), Config{
		AlphaHint: map[string]float64{"embedding": 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	p := runner.SparsePartitions()
	if p < 1 || p > 2000 {
		t.Fatalf("searched partitions = %d out of range", p)
	}
	// A quick step must work with the searched partitioning.
	feeds := make([]Feed, runner.Workers())
	for w := range feeds {
		feeds[w] = Feed{Ints: map[string][]int{
			"tokens": {1, 2, 3, 4, 5, 6, 7, 8},
			"labels": {0, 1, 2, 3, 4, 5, 6, 7},
		}}
	}
	if _, err := runner.Run(feeds); err != nil {
		t.Fatal(err)
	}
}

func TestDenseOnlyGraphSkipsSearchAndServers(t *testing.T) {
	rng := NewRNG(3)
	g := NewGraph()
	x := g.Input("x", Float, 4, 8)
	labels := g.Input("labels", Int, 4)
	w := g.Variable("w", rng.RandN(0.2, 8, 5))
	g.SoftmaxCE(g.MatMul(x, w), labels)
	runner, err := GetRunner(g, Uniform(2, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	if runner.SparsePartitions() != 1 {
		t.Fatalf("dense model searched partitions: %d", runner.SparsePartitions())
	}
	feeds := make([]Feed, 2)
	for i := range feeds {
		feeds[i] = Feed{
			Floats: map[string]*Dense{"x": rng.RandN(1, 4, 8)},
			Ints:   map[string][]int{"labels": {0, 1, 2, 3}},
		}
	}
	if _, err := runner.Run(feeds); err != nil {
		t.Fatal(err)
	}
}

func TestGetRunnerValidations(t *testing.T) {
	g := NewGraph()
	g.Input("x", Float, 1, 1) // no loss
	if _, err := GetRunner(g, Uniform(1, 1), Config{}); err == nil {
		t.Fatal("graph without loss must fail")
	}
	g2 := buildAPIModel(2, 10)
	if _, err := GetRunner(g2, ResourceInfo{}, Config{}); err == nil {
		t.Fatal("empty resources must fail")
	}
}

func TestRunLoopPublicAPI(t *testing.T) {
	g := buildAPIModel(8, 150)
	runner, err := GetRunner(g, Uniform(2, 2), Config{SparsePartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()

	var hookSteps int
	var lastStats StepStats
	stats, err := runner.RunLoop(data.NewZipfText(150, 8, 1, 1.0, 21), 25, func(s StepStats) {
		if s.Step != hookSteps {
			t.Errorf("hook saw step %d, want %d", s.Step, hookSteps)
		}
		hookSteps++
		lastStats = s
	})
	if err != nil {
		t.Fatal(err)
	}
	if hookSteps != 25 || stats.Steps != 25 {
		t.Fatalf("ran %d hook steps, stats counted %d, want 25", hookSteps, stats.Steps)
	}
	if !(stats.LastLoss < stats.FirstLoss) {
		t.Fatalf("RunLoop loss did not decrease: %v -> %v", stats.FirstLoss, stats.LastLoss)
	}
	if lastStats.BytesPushed <= 0 || stats.TotalBytesPushed <= 0 {
		t.Fatalf("push-byte metrics missing: step %d total %d", lastStats.BytesPushed, stats.TotalBytesPushed)
	}
	if lastStats.StepTime <= 0 || stats.TotalTime <= 0 {
		t.Fatalf("timing metrics missing: step %v total %v", lastStats.StepTime, stats.TotalTime)
	}
}

func TestRunLoopFeedsCustomInputs(t *testing.T) {
	// A dense-only graph without tokens/labels inputs: RunLoop must refuse
	// it with a helpful error, RunLoopFeeds must drive it.
	rng := NewRNG(8)
	g := NewGraph()
	x := g.Input("x", Float, 4, 6)
	labels := g.Input("y", Int, 4)
	w := g.Variable("w", rng.RandN(0.2, 6, 3))
	g.SoftmaxCE(g.MatMul(x, w), labels)
	runner, err := GetRunner(g, Uniform(2, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()

	if _, err := runner.RunLoop(data.NewZipfText(10, 4, 1, 1.0, 3), 1); err == nil {
		t.Fatal("RunLoop on a graph without tokens/labels inputs must fail")
	}

	stats, err := runner.RunLoopFeeds(func(step, worker int) (Feed, error) {
		return Feed{
			Floats: map[string]*Dense{"x": rng.RandN(1, 4, 6)},
			Ints:   map[string][]int{"y": {0, 1, 2, 0}},
		}, nil
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps != 5 {
		t.Fatalf("ran %d steps, want 5", stats.Steps)
	}

	// A transposed float feed has the right element count but the wrong
	// shape; it must be rejected before dispatch, not crash a worker.
	_, err = runner.RunLoopFeeds(func(step, worker int) (Feed, error) {
		return Feed{
			Floats: map[string]*Dense{"x": rng.RandN(1, 6, 4)},
			Ints:   map[string][]int{"y": {0, 1, 2, 0}},
		}, nil
	}, 1)
	if err == nil {
		t.Fatal("transposed float feed must fail")
	}
}

func TestMeasureAlphaPublicAPI(t *testing.T) {
	a := MeasureAlpha(data.NewZipfText(500, 16, 4, 1.0, 9), 500, 5)
	if a <= 0 || a >= 1 {
		t.Fatalf("alpha = %v", a)
	}
}

// TestAutoPartitionOnlineSearch is the acceptance check of the online
// §3.2 search: on the hybrid LM example the tuning phase must settle
// within the paper's budget of 5 measurement runs, choose a P inside
// the sampled bracket, reshard the live runtime to it, and keep the
// training loop accounting intact (every step, tuning included, flows
// through hooks and stats).
func TestAutoPartitionOnlineSearch(t *testing.T) {
	const vocab, batch, steps = 600, 8, 30
	g := buildAPIModel(batch, vocab)
	runner, err := GetRunner(g, Uniform(2, 2), Config{
		AutoPartition: true,
		AlphaHint:     map[string]float64{"embedding": 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()

	d := runner.PartitionDecision()
	if !d.Pending || d.Source != "online" {
		t.Fatalf("pre-loop decision = %+v, want pending online", d)
	}
	if runner.SparsePartitions() != 2 {
		t.Fatalf("initial P = %d, want the machine count", runner.SparsePartitions())
	}

	hookSteps := 0
	stats, err := runner.RunLoop(data.NewZipfText(vocab, batch, 1, 1.0, 11), steps, func(s StepStats) {
		if s.Step != hookSteps {
			t.Errorf("hook saw step %d, want %d", s.Step, hookSteps)
		}
		hookSteps++
	})
	if err != nil {
		t.Fatal(err)
	}
	if hookSteps != steps || stats.Steps != steps {
		t.Fatalf("ran %d hook steps, stats counted %d, want %d", hookSteps, stats.Steps, steps)
	}

	d = runner.PartitionDecision()
	if d.Pending || d.Source != "online" || d.Search == nil {
		t.Fatalf("post-loop decision = %+v, want settled online search", d)
	}
	if d.Search.Runs > 5 {
		t.Fatalf("online search used %d measurement runs, budget is 5", d.Search.Runs)
	}
	lo, hi := d.Search.Samples[0].P, d.Search.Samples[0].P
	for _, s := range d.Search.Samples {
		if s.P < lo {
			lo = s.P
		}
		if s.P > hi {
			hi = s.P
		}
	}
	if d.P < lo || d.P > hi {
		t.Fatalf("chosen P=%d outside the sampled bracket [%d,%d]", d.P, lo, hi)
	}
	if runner.SparsePartitions() != d.P {
		t.Fatalf("runtime at P=%d, decision says %d", runner.SparsePartitions(), d.P)
	}

	// A second loop must not re-run the tuning phase.
	if _, err := runner.RunLoop(data.NewZipfText(vocab, batch, 1, 1.0, 12), 2); err != nil {
		t.Fatal(err)
	}
	if runner.PartitionDecision().P != d.P {
		t.Fatal("second RunLoop re-tuned the partitioning")
	}
}

// TestAutoPartitionTruncatedBudget: a RunLoop too short to finish the
// tuning phase must still run exactly `steps` steps, settle on a
// sampled point, and render a decision without NaN thetas (probes the
// budget cannot afford are skipped before resharding and excluded from
// the fit).
func TestAutoPartitionTruncatedBudget(t *testing.T) {
	const vocab, batch, steps = 400, 8, 8 // room for ~2 probes of 3 steps
	g := buildAPIModel(batch, vocab)
	runner, err := GetRunner(g, Uniform(2, 2), Config{AutoPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	stats, err := runner.RunLoop(data.NewZipfText(vocab, batch, 1, 1.0, 19), steps)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps != steps {
		t.Fatalf("ran %d steps, want %d", stats.Steps, steps)
	}
	d := runner.PartitionDecision()
	if d.Pending || d.Search == nil || d.P < 1 {
		t.Fatalf("truncated tuning left decision %+v", d)
	}
	if out := d.String(); strings.Contains(out, "NaN") {
		t.Fatalf("decision renders NaN thetas:\n%s", out)
	}
}

// TestPublicRepartitionLossless drives Runner.Repartition directly: a
// run that reshards mid-training must keep a loss trajectory
// bit-identical to a runner configured with the target P from the
// start (the transform-level tests pin the same property per-variable
// and over TCP; this covers the public wiring).
func TestPublicRepartitionLossless(t *testing.T) {
	const vocab, batch, steps, switchAt = 300, 8, 6, 3
	run := func(startP int, reshardTo int) []float64 {
		g := buildAPIModel(batch, vocab)
		runner, err := GetRunner(g, Uniform(2, 2), Config{SparsePartitions: startP})
		if err != nil {
			t.Fatal(err)
		}
		defer runner.Close()
		ds := data.NewZipfText(vocab, batch, 1, 1.0, 13)
		var losses []float64
		hook := func(s StepStats) { losses = append(losses, s.Loss) }
		if _, err := runner.RunLoop(ds, switchAt, hook); err != nil {
			t.Fatal(err)
		}
		if reshardTo > 0 {
			if err := runner.Repartition(reshardTo); err != nil {
				t.Fatal(err)
			}
			if runner.SparsePartitions() != reshardTo {
				t.Fatalf("SparsePartitions() = %d after Repartition(%d)", runner.SparsePartitions(), reshardTo)
			}
		}
		if _, err := runner.RunLoop(ds, steps-switchAt, hook); err != nil {
			t.Fatal(err)
		}
		return losses
	}
	want := run(4, 0)
	got := run(2, 4)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("step %d loss %v after reshard, want %v", i, got[i], want[i])
		}
	}
}

// TestShardMapAndDecisionReporting checks the live reporting surface:
// the shard map names every route with its partition→machine
// assignment, and Describe carries the partition decision.
func TestShardMapAndDecisionReporting(t *testing.T) {
	g := buildAPIModel(4, 50)
	runner, err := GetRunner(g, Uniform(2, 1), Config{SparsePartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	sm := runner.ShardMap()
	for _, want := range []string{"embedding", "ps x3", "->m", "rows/server:", "proj", "replicated"} {
		if !strings.Contains(sm, want) {
			t.Errorf("shard map missing %q:\n%s", want, sm)
		}
	}
	if d := runner.Describe(); !strings.Contains(d, "partitions: 3 (fixed)") {
		t.Errorf("Describe missing partition decision:\n%s", d)
	}
	// After a live reshard the map must reflect the new partitioning.
	if err := runner.Repartition(2); err != nil {
		t.Fatal(err)
	}
	if sm := runner.ShardMap(); !strings.Contains(sm, "ps x2") {
		t.Errorf("shard map not updated after reshard:\n%s", sm)
	}
}

func TestConfigVariants(t *testing.T) {
	g := buildAPIModel(4, 40)
	for _, cfg := range []Config{
		{Arch: AllReduceOnly, SparsePartitions: 1},
		{Arch: PSOnly, SparsePartitions: 2},
		{Arch: OptimizedPS, SparsePartitions: 2},
		{Arch: Hybrid, SparsePartitions: 2, ClipNorm: 1.0},
		{Arch: PSOnly, SparsePartitions: 2, Async: true},
		{Arch: Hybrid, SparsePartitions: 2, DenseAgg: AggSum, SparseAgg: AggSum,
			NewOptimizer: func() Optimizer { return NewMomentum(0.01, 0.9) }},
	} {
		runner, err := GetRunner(g, Uniform(2, 1), cfg)
		if err != nil {
			t.Fatalf("config %+v: %v", cfg, err)
		}
		feeds := make([]Feed, runner.Workers())
		for w := range feeds {
			feeds[w] = Feed{Ints: map[string][]int{
				"tokens": {1, 2, 3, 4}, "labels": {5, 6, 7, 8},
			}}
		}
		if _, err := runner.Run(feeds); err != nil {
			t.Fatalf("config %+v: step: %v", cfg, err)
		}
		runner.Close()
	}
}
